// Per-site validated observation buffer.
//
// The front door of the continuous-update pipeline: every streamed
// Observation passes through push(), which either quarantines it (counted
// by reason in the site's serve::SiteHealthCounters, then dropped — a bad
// reading must never reach the solver) or folds it into the per-(link,
// cell) running means the next update is assembled from.  The buffer is
// bounded: once `capacity` observations are held, further pushes fail
// with kResourceExhausted until an update consumes the epoch — back
// pressure instead of unbounded memory under a stalled supervisor.
//
// assemble() turns the buffered means into the solver's UpdateInputs
// against a concrete snapshot: fresh means where the stream covered an
// entry, the served value as a stale fallback elsewhere (so a sparse
// stream still yields a well-formed X_B / X_R — the solver sees "no
// change observed" rather than zeros that would read as -inf dB drops).
//
// Thread-safe behind one internal mutex; never called on the serve read
// path (producers and the supervisor only).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "api/snapshot.hpp"
#include "api/status.hpp"
#include "core/updater.hpp"
#include "ingest/observation.hpp"
#include "serve/health.hpp"

namespace iup::ingest {

struct ObservationBufferOptions {
  /// Accepted observations held per epoch; pushes beyond this fail with
  /// kResourceExhausted (and count as quarantine_overflow) until
  /// consume() opens the next epoch.
  std::size_t capacity = 4096;
  ObservationLimits limits;
};

class ObservationBuffer {
 public:
  /// `links` / `cells` bound the valid id space (M and N of the site's
  /// fingerprint matrix); `health` is the counter block quarantine and
  /// acceptance tallies land in — the site's shard counters when wired by
  /// the supervisor, or a test-owned instance.  `health` must outlive the
  /// buffer.
  ObservationBuffer(std::size_t links, std::size_t cells,
                    serve::SiteHealthCounters& health,
                    ObservationBufferOptions options = {});

  /// Multi-radio front door: as above, plus the site's per-link source
  /// table (one SourceInfo per link, from the registered snapshot).  With
  /// a non-empty table every pushed observation must carry the source id
  /// registered for its link or it is quarantined as kUnknownSource —
  /// a reading attributed to the wrong transmitter is a labelling fault,
  /// not signal.  An empty table reproduces the legacy behaviour (no
  /// source checks).
  ObservationBuffer(std::size_t links, std::size_t cells,
                    std::vector<SourceInfo> sources,
                    serve::SiteHealthCounters& health,
                    ObservationBufferOptions options = {});

  /// Validate and buffer one reading.  Returns kInvalidArgument for
  /// non-finite / out-of-range values, unknown link or cell ids and (when
  /// a source table is present) source mismatches — the reading is
  /// quarantined; kResourceExhausted at capacity, OK on accept.  Accepted
  /// readings update the per-(link, cell) running mean and the health
  /// block's last_observed_day.
  api::Status push(const Observation& observation);

  /// Accepted observations in the current epoch.
  std::size_t size() const;

  /// Distinct (link, cell) entries with at least one accepted reading.
  std::size_t coverage() const;

  /// Mean buffered RSS for one entry, or nullopt when the stream has not
  /// covered it this epoch.
  std::optional<double> mean(std::size_t link, std::size_t cell) const;

  /// Drop the current epoch's readings (after a committed update consumed
  /// them).  Quarantine/acceptance tallies are cumulative and unaffected.
  void consume();

  /// Build the solver inputs for an update against `snapshot`: X_B holds
  /// the buffered mean at every no-decrease (mask == 1) entry the stream
  /// covered and the served database value elsewhere in the mask (stale
  /// fallback), zeros off-mask; X_R is one column per reference cell with
  /// the same fresh-else-served rule.  Fails with kInvalidArgument when
  /// the snapshot's shape disagrees with the buffer's id space.
  api::Result<core::UpdateInputs> assemble(
      const api::FingerprintSnapshot& snapshot) const;

  std::size_t links() const { return links_; }
  std::size_t cells() const { return cells_; }
  /// Per-link source table; empty when source validation is disabled.
  const std::vector<SourceInfo>& sources() const { return sources_; }
  const ObservationBufferOptions& options() const { return options_; }

 private:
  struct Aggregate {
    double sum = 0.0;
    std::uint64_t count = 0;
  };

  std::uint64_t key(std::size_t link, std::size_t cell) const {
    return static_cast<std::uint64_t>(link) * cells_ + cell;
  }

  std::size_t links_;
  std::size_t cells_;
  std::vector<SourceInfo> sources_;
  serve::SiteHealthCounters& health_;
  ObservationBufferOptions options_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Aggregate> entries_;
  std::size_t accepted_ = 0;  ///< this epoch
};

}  // namespace iup::ingest
