#include "ingest/buffer.hpp"

#include <cmath>
#include <string>
#include <utility>

namespace iup::ingest {

ObservationBuffer::ObservationBuffer(std::size_t links, std::size_t cells,
                                     serve::SiteHealthCounters& health,
                                     ObservationBufferOptions options)
    : links_(links), cells_(cells), health_(health), options_(options) {}

ObservationBuffer::ObservationBuffer(std::size_t links, std::size_t cells,
                                     std::vector<SourceInfo> sources,
                                     serve::SiteHealthCounters& health,
                                     ObservationBufferOptions options)
    : links_(links),
      cells_(cells),
      sources_(std::move(sources)),
      health_(health),
      options_(options) {}

api::Status ObservationBuffer::push(const Observation& observation) {
  // Validation order mirrors severity: a non-finite value is quarantined
  // as such even when its ids are also bad, so the counters tell the
  // operator *what* is wrong with the stream, not just that it is.
  if (!std::isfinite(observation.rss_db)) {
    health_.quarantine_non_finite.fetch_add(1, std::memory_order_relaxed);
    return api::Status::invalid_argument(
        "observation: non-finite RSS reading quarantined");
  }
  if (observation.rss_db < options_.limits.min_rss_db ||
      observation.rss_db > options_.limits.max_rss_db) {
    health_.quarantine_out_of_range.fetch_add(1, std::memory_order_relaxed);
    return api::Status::invalid_argument(
        "observation: RSS " + std::to_string(observation.rss_db) +
        " dB outside [" + std::to_string(options_.limits.min_rss_db) + ", " +
        std::to_string(options_.limits.max_rss_db) + "] quarantined");
  }
  if (observation.link >= links_) {
    health_.quarantine_unknown_link.fetch_add(1, std::memory_order_relaxed);
    return api::Status::invalid_argument(
        "observation: unknown link id " + std::to_string(observation.link) +
        " (site has " + std::to_string(links_) + " links)");
  }
  if (observation.cell >= cells_) {
    health_.quarantine_unknown_cell.fetch_add(1, std::memory_order_relaxed);
    return api::Status::invalid_argument(
        "observation: unknown cell id " + std::to_string(observation.cell) +
        " (site has " + std::to_string(cells_) + " cells)");
  }
  // Source identity check (multi-radio sites only): the link index is
  // validated above, so the table lookup is in bounds.  A missing or
  // mismatching id means the reading was attributed to a transmitter the
  // site never registered — quarantine, don't guess.
  if (!sources_.empty() &&
      observation.source != sources_[observation.link].id) {
    health_.quarantine_unknown_source.fetch_add(1,
                                                std::memory_order_relaxed);
    return api::Status::invalid_argument(
        "observation: source id " +
        (observation.source.specified()
             ? std::to_string(observation.source.value())
             : std::string("(unspecified)")) +
        " does not match the source registered for link " +
        std::to_string(observation.link) + " (expected id " +
        std::to_string(sources_[observation.link].id.value()) + ")");
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (accepted_ >= options_.capacity) {
      health_.quarantine_overflow.fetch_add(1, std::memory_order_relaxed);
      return api::Status::resource_exhausted(
          "observation buffer at capacity (" +
          std::to_string(options_.capacity) + "); update must drain first");
    }
    Aggregate& agg = entries_[key(observation.link, observation.cell)];
    agg.sum += observation.rss_db;
    agg.count += 1;
    ++accepted_;
  }
  health_.observations_accepted.fetch_add(1, std::memory_order_relaxed);
  health_.note_observed_day(observation.day);
  return {};
}

std::size_t ObservationBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

std::size_t ObservationBuffer::coverage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::optional<double> ObservationBuffer::mean(std::size_t link,
                                              std::size_t cell) const {
  if (link >= links_ || cell >= cells_) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(link, cell));
  if (it == entries_.end()) return std::nullopt;
  return it->second.sum / static_cast<double>(it->second.count);
}

void ObservationBuffer::consume() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  accepted_ = 0;
}

api::Result<core::UpdateInputs> ObservationBuffer::assemble(
    const api::FingerprintSnapshot& snapshot) const {
  const linalg::Matrix& x = snapshot.database();
  const linalg::Matrix& mask = snapshot.mask();
  if (x.rows() != links_ || x.cols() != cells_) {
    return api::Status::invalid_argument(
        "assemble: snapshot is " + std::to_string(x.rows()) + "x" +
        std::to_string(x.cols()) + " but the buffer was sized for " +
        std::to_string(links_) + "x" + std::to_string(cells_));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const auto fresh_or_served = [&](std::size_t i, std::size_t j) {
    const auto it = entries_.find(key(i, j));
    if (it == entries_.end()) return x(i, j);
    return it->second.sum / static_cast<double>(it->second.count);
  };

  core::UpdateInputs inputs;
  inputs.x_b = linalg::Matrix(links_, cells_);
  for (std::size_t i = 0; i < links_; ++i) {
    for (std::size_t j = 0; j < cells_; ++j) {
      if (mask(i, j) != 0.0) inputs.x_b(i, j) = fresh_or_served(i, j);
    }
  }

  const std::vector<std::size_t>& refs = snapshot.reference_cells();
  inputs.x_r = linalg::Matrix(links_, refs.size());
  for (std::size_t k = 0; k < refs.size(); ++k) {
    for (std::size_t i = 0; i < links_; ++i) {
      inputs.x_r(i, k) = fresh_or_served(i, refs[k]);
    }
  }
  // Stamp the inputs with the snapshot's source table so the Engine's
  // solve-time source check sees a consistent provenance chain.
  inputs.sources = snapshot.sources();
  return inputs;
}

}  // namespace iup::ingest
