// EWMA drift detection against the served snapshot.
//
// The paper's Fig. 2 shows the fingerprint level wandering ~2.5 dB over 5
// days and ~6 dB over 45 (sim::DriftModel reproduces that trajectory), so
// "when is the served database stale enough to pay for an update?" has a
// natural statistic: the absolute residual between each fresh reading and
// the value the published snapshot serves for the same (link, cell).  The
// detector keeps an exponentially-weighted moving average of those
// residuals — cheap, O(1) per observation, and robust to single outliers
// (which the quarantine has already removed anyway) — and reports drift
// once the average crosses a dB threshold with enough support.
//
// Not thread-safe on its own; the supervisor feeds it under its own lock.
#pragma once

#include <cstddef>

namespace iup::ingest {

struct DriftDetectorOptions {
  /// EWMA weight of the newest residual; 0 < alpha <= 1.  The default
  /// averages over roughly the last 1/alpha = 20 readings.
  double alpha = 0.05;
  /// Mean absolute residual [dB] that declares the served snapshot
  /// drifted (the paper's 5-day drift is ~2.5 dB; trigger just under it).
  double threshold_db = 2.0;
  /// Readings required before drifted() may fire — a handful of fresh
  /// observations is noise, not evidence.
  std::size_t min_observations = 16;
};

class EwmaDriftDetector {
 public:
  explicit EwmaDriftDetector(DriftDetectorOptions options = {});

  /// Fold in one |measured - served| residual [dB].
  void observe(double residual_db);

  /// Current EWMA of the absolute residuals (0 before any observation).
  double ewma() const { return ewma_; }

  std::size_t count() const { return count_; }

  /// True once the EWMA is at/above threshold_db with min_observations of
  /// support.  Stays true until reset() — the supervisor resets after it
  /// has queued the update the detection asked for.
  bool drifted() const;

  /// Start a fresh window (after a committed update: the residuals were
  /// measured against a snapshot that is no longer serving).
  void reset();

  const DriftDetectorOptions& options() const { return options_; }

 private:
  DriftDetectorOptions options_;
  double ewma_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace iup::ingest
