// iup::ingest — streamed sparse RSS observations.
//
// The paper's continuous-update story assumes fresh measurements keep
// arriving from the deployment (participatory baseline traffic plus the
// occasional reference-location survey).  This layer models that stream
// as individual Observation records — one (link, cell) RSS reading with a
// day stamp — validated at the door (ObservationLimits) and buffered per
// site until the supervisor decides the served snapshot has drifted far
// enough to pay for an update.
#pragma once

#include <cstddef>
#include <cstdint>

#include "base/ids.hpp"

namespace iup::ingest {

/// One streamed RSS reading: link `link` observed `rss_db` while the
/// environment was labelled as day `day`, attributed to grid cell `cell`
/// (the surveyor's position for reference measurements, the no-decrease
/// cell for baseline traffic).  `source` names the transmitter the
/// reading came from (firmware-style RssiSample{id, rssi}); the default
/// unspecified value is accepted only by sites registered without a
/// source table.
struct Observation {
  std::size_t link = 0;
  std::size_t cell = 0;
  double rss_db = 0.0;
  std::uint64_t day = 0;
  SourceId source;
};

/// Validation envelope for incoming readings.  Anything outside is
/// quarantined (counted, dropped) rather than fed to the solver: a single
/// NaN in X_B would poison the whole reconstruction, and a 400 dB reading
/// is a sensor fault, not signal.  Defaults cover every RSS a real 2.4 GHz
/// deployment can produce with generous margin.
struct ObservationLimits {
  double min_rss_db = -120.0;
  double max_rss_db = 30.0;
};

/// Why an observation was quarantined instead of buffered.
enum class QuarantineReason {
  kNonFinite,    ///< NaN / +-Inf reading
  kOutOfRange,   ///< finite but outside ObservationLimits
  kUnknownLink,  ///< link id >= the site's link count
  kUnknownCell,    ///< cell id >= the site's cell count
  kUnknownSource,  ///< source id does not match the link's registered source
  kOverflow,       ///< buffer at capacity (kResourceExhausted)
};

}  // namespace iup::ingest
