// UpdateSupervisor — the background continuous-update loop.
//
// One supervisor watches any number of an Engine's sites and closes the
// paper's loop end to end: producers stream Observations in through
// observe() (validated/quarantined by the site's ObservationBuffer, with
// each accepted reading's residual against the *served* snapshot feeding
// an EwmaDriftDetector), and once a site's detector crosses its threshold
// — or trigger() forces the issue — the supervisor runs Algorithm 1
// through Engine::update() off the per-shard warm caches.
//
// Failure handling is the point of this class:
//
//   healthy --> updating --> healthy            commit landed
//   updating --> backoff --> updating           retry, exponential backoff
//                                               with seeded jitter
//   backoff --> degraded                        circuit breaker: too many
//                                               consecutive failures
//   degraded --> updating --> healthy           cooldown probe succeeded
//                                               ("recovered")
//
// A degraded site is parked, not dropped: its last-good RCU bundle keeps
// serving (the Engine aborts failed commits before publication, so
// readers never see a partial version), with staleness readable through
// Engine::site_health().  After breaker_cooldown the breaker half-opens
// and the next pump probes once; a successful probe closes it and counts
// a recovery.  All transitions are mirrored into the site's
// serve::SiteHealthCounters.
//
// Threading: observe()/trigger() are producer-safe from any thread (never
// the serve read path); the state machine advances in pump(), which
// start() runs on a background thread every poll_period — or which tests
// call directly for fully deterministic, clock-free sequencing (zero
// backoff/cooldown options make every retry immediately due).  Solves run
// outside every supervisor lock, so observe() never blocks on a solve.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "api/engine.hpp"
#include "ingest/buffer.hpp"
#include "ingest/drift.hpp"
#include "rng/rng.hpp"
#include "serve/health.hpp"

namespace iup::ingest {

struct SupervisorOptions {
  /// Background-thread pump cadence (start(); pump() callers own timing).
  std::chrono::milliseconds poll_period{20};
  /// Soft deadline classification: a *successful* update slower than this
  /// still counts a deadline_trip (zero disables).  Hard enforcement —
  /// aborting the commit — lives in the before_publish hook
  /// (FaultInjector::set_deadline or any caller-installed hook).
  std::chrono::milliseconds deadline{0};
  std::chrono::milliseconds backoff_initial{100};
  std::chrono::milliseconds backoff_max{2000};
  /// Backoff is scaled by a seeded uniform draw from
  /// [1 - jitter, 1 + jitter] — deterministic per (seed, site).
  double backoff_jitter = 0.2;
  /// Consecutive failures that open the circuit breaker (>= 1).
  std::uint64_t breaker_threshold = 3;
  /// Wait before a degraded site half-opens for a probe attempt.
  std::chrono::milliseconds breaker_cooldown{500};
  std::uint64_t seed = 0x5096eedULL;
};

/// Per-site knobs fixed at watch() time.
struct WatchOptions {
  ObservationBufferOptions buffer;
  DriftDetectorOptions drift;
  /// Builds the UpdateRequest for an attempt (`day` is the site's newest
  /// observed day).  Default: assemble the watched buffer against the
  /// latest snapshot.  A non-OK result counts as a failed attempt.
  std::function<api::Result<api::UpdateRequest>(const std::string& site,
                                                std::uint64_t day)>
      collector;
};

class UpdateSupervisor {
 public:
  /// `engine` must outlive the supervisor.
  explicit UpdateSupervisor(api::Engine& engine, SupervisorOptions options = {});
  ~UpdateSupervisor();

  UpdateSupervisor(const UpdateSupervisor&) = delete;
  UpdateSupervisor& operator=(const UpdateSupervisor&) = delete;

  /// Start supervising a registered site.  kNotFound for unknown sites,
  /// kFailedPrecondition when already watched.
  api::Status watch(const std::string& site, WatchOptions options = {});
  api::Status unwatch(const std::string& site);

  /// Producer entry point: validate + buffer one reading, feed the drift
  /// detector with its residual against the served snapshot, and queue an
  /// update when the detector fires.  Returns the buffer's verdict
  /// (kInvalidArgument / kResourceExhausted for quarantined readings).
  api::Status observe(const std::string& site, const Observation& observation);

  /// Force an update attempt at the next pump, bypassing drift detection
  /// and any pending backoff wait.
  api::Status trigger(const std::string& site);

  /// Advance the state machine once: run every due attempt synchronously
  /// on the calling thread.  Returns the number of attempts run.  The
  /// deterministic test entry point; start() just calls this on a timer.
  std::size_t pump();

  void start();
  void stop();
  bool running() const;

  const SupervisorOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Watched {
    std::string site;
    std::shared_ptr<serve::SiteShard> shard;
    std::unique_ptr<ObservationBuffer> buffer;
    WatchOptions watch;
    rng::Rng jitter;

    std::mutex mutex;  ///< guards everything below
    EwmaDriftDetector detector;
    serve::SiteState state = serve::SiteState::kHealthy;
    bool degraded = false;     ///< breaker open (survives probe attempts)
    bool pending = false;      ///< an update is queued (drift / trigger /
                               ///< retry)
    bool in_flight = false;    ///< an attempt is running right now
    std::uint64_t consecutive_failures = 0;
    std::chrono::nanoseconds backoff{0};  ///< next retry's base delay
    Clock::time_point next_attempt{};     ///< earliest due time
  };

  using WatchedPtr = std::shared_ptr<Watched>;

  WatchedPtr find(const std::string& site) const;
  /// Mirror a state-machine transition into the shard counters; callers
  /// hold w.mutex.
  static void set_state(Watched& w, serve::SiteState state);
  /// Run one attempt for `w` (marked in_flight by the caller): build the
  /// request, Engine::update() outside every lock, then classify the
  /// outcome into retry/backoff/breaker bookkeeping.
  void attempt(Watched& w);
  api::Result<api::UpdateRequest> collect(Watched& w, std::uint64_t day);

  api::Engine& engine_;
  SupervisorOptions options_;

  mutable std::mutex sites_mutex_;
  std::unordered_map<std::string, WatchedPtr> sites_;

  mutable std::mutex run_mutex_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace iup::ingest
