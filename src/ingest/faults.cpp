#include "ingest/faults.hpp"

#include <limits>
#include <thread>

namespace iup::ingest {

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::arm(FaultKind kind, FaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mutex_);
  KindState& state = kinds_[static_cast<std::uint32_t>(kind)];
  state.armed = true;
  state.schedule = schedule;
  state.attempts = 0;
  state.fired = 0;
}

void FaultInjector::clear(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = kinds_.find(static_cast<std::uint32_t>(kind));
  if (it != kinds_.end()) it->second.armed = false;
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [kind, state] : kinds_) state.armed = false;
}

bool FaultInjector::fire(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = kinds_.find(static_cast<std::uint32_t>(kind));
  if (it == kinds_.end() || !it->second.armed) return false;
  KindState& state = it->second;
  const std::uint64_t n = state.attempts++;
  if (n < state.schedule.start) return false;
  if (state.schedule.count != 0 && state.fired >= state.schedule.count) {
    return false;
  }
  const std::uint64_t every = state.schedule.every == 0 ? 1
                                                        : state.schedule.every;
  if ((n - state.schedule.start) % every != 0) return false;
  ++state.fired;
  return true;
}

std::uint64_t FaultInjector::fired(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = kinds_.find(static_cast<std::uint32_t>(kind));
  return it == kinds_.end() ? 0 : it->second.fired;
}

void FaultInjector::corrupt(Observation& observation) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (rng_.uniform_index(4)) {
    case 0:
      observation.rss_db = std::numeric_limits<double>::quiet_NaN();
      break;
    case 1:
      observation.rss_db = std::numeric_limits<double>::infinity();
      break;
    case 2:
      observation.rss_db = 400.0;  // a sensor fault, not a signal
      break;
    default:
      observation.link = std::numeric_limits<std::size_t>::max();
      break;
  }
}

void FaultInjector::set_solve_delay(std::chrono::nanoseconds delay) {
  solve_delay_ns_.store(delay.count(), std::memory_order_relaxed);
}

void FaultInjector::set_publish_delay(std::chrono::nanoseconds delay) {
  publish_delay_ns_.store(delay.count(), std::memory_order_relaxed);
}

void FaultInjector::set_deadline(std::chrono::nanoseconds deadline) {
  deadline_ns_.store(deadline.count(), std::memory_order_relaxed);
}

std::chrono::nanoseconds FaultInjector::deadline() const {
  return std::chrono::nanoseconds(
      deadline_ns_.load(std::memory_order_relaxed));
}

api::UpdateHooks FaultInjector::engine_hooks() {
  api::UpdateHooks hooks;
  hooks.on_solve = [this]() -> api::Status {
    // Order matters: a slow solve *succeeds* at the solver level (and
    // trips the deadline at before_publish instead), so the two failure
    // modes stay distinguishable in the health counters.
    if (fire(FaultKind::kSlowSolve)) {
      const auto delay = std::chrono::nanoseconds(
          solve_delay_ns_.load(std::memory_order_relaxed));
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
      return {};
    }
    if (fire(FaultKind::kSolverFailure)) {
      return api::Status::unavailable("injected fault: solver outage");
    }
    return {};
  };
  hooks.before_publish =
      [this](std::chrono::nanoseconds elapsed) -> api::Status {
    if (fire(FaultKind::kDelayPublish)) {
      const auto delay = std::chrono::nanoseconds(
          publish_delay_ns_.load(std::memory_order_relaxed));
      if (delay.count() > 0) {
        std::this_thread::sleep_for(delay);
        elapsed += delay;
      }
    }
    const auto budget = std::chrono::nanoseconds(
        deadline_ns_.load(std::memory_order_relaxed));
    if (budget.count() > 0 && elapsed > budget) {
      return api::Status::deadline_exceeded(
          "injected fault: update ran past its deadline; commit aborted");
    }
    return {};
  };
  return hooks;
}

}  // namespace iup::ingest
