#include "serve/shard.hpp"

#include <cassert>

namespace iup::serve {

namespace {

// Nesting depth of ReadPathScope on this thread (scopes may stack when a
// read-path helper calls another).
thread_local int read_path_depth = 0;

// Relaxed is enough: the counter is a monotonic tally read after threads
// join (tests) or for monitoring — it orders nothing.
std::atomic<std::uint64_t> lock_violations{0};

}  // namespace

ReadPathScope::ReadPathScope() { ++read_path_depth; }

ReadPathScope::~ReadPathScope() { --read_path_depth; }

bool in_read_path() { return read_path_depth > 0; }

std::uint64_t read_path_lock_violations() {
  return lock_violations.load(std::memory_order_relaxed);
}

void note_state_lock_acquired() {
  if (read_path_depth > 0) {
    lock_violations.fetch_add(1, std::memory_order_relaxed);
    assert(false && "state mutex acquired on the serve read path");
  }
}

void SiteShard::ensure_holds(const std::unique_lock<std::mutex>& lock) const {
  assert(lock.owns_lock() && lock.mutex() == &update_mutex_);
  (void)lock;
}

}  // namespace iup::serve
