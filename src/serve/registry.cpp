#include "serve/registry.hpp"

#include <algorithm>
#include <utility>

namespace iup::serve {

ShardRegistry::ShardRegistry() {
  map_.store(std::make_shared<const Map>());
}

ShardRegistry::ShardPtr ShardRegistry::find(const std::string& site) const {
  const MapPtr map = map_.load();
  const auto it = map->find(site);
  return it == map->end() ? nullptr : it->second;
}

ShardRegistry::ShardPtr ShardRegistry::emplace(const std::string& site) {
  note_state_lock_acquired();
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const MapPtr current = map_.load();
  if (const auto it = current->find(site); it != current->end()) {
    return it->second;
  }
  auto shard = std::make_shared<SiteShard>(site);
  auto next = std::make_shared<Map>(*current);
  next->emplace(site, shard);
  map_.store(MapPtr(std::move(next)));
  return shard;
}

bool ShardRegistry::erase(const std::string& site) {
  note_state_lock_acquired();
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const MapPtr current = map_.load();
  if (current->find(site) == current->end()) return false;
  auto next = std::make_shared<Map>(*current);
  next->erase(site);
  map_.store(MapPtr(std::move(next)));
  return true;
}

std::vector<std::string> ShardRegistry::sites() const {
  const MapPtr map = map_.load();
  std::vector<std::string> names;
  names.reserve(map->size());
  for (const auto& [name, shard] : *map) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace iup::serve
