// RcuSlot<T>: a shared_ptr publication slot that is formally data-race
// free under the C++ memory model — the serve layer's replacement for
// std::atomic<std::shared_ptr<T>>.
//
// Why not the standard type: libstdc++ (GCC 12) implements _Sp_atomic as
// a lock-bit spinlock around PLAIN accesses to its internal pointer, and
// the reader path unlocks with a RELAXED fetch_sub
// (bits/shared_ptr_atomic.h, load() -> unlock(memory_order_relaxed)).
// Mutual exclusion still holds through the RMW total order on the lock
// word, so the code works on real hardware — but a reader's plain pointer
// read has no happens-before edge to the NEXT writer's plain pointer
// write (a relaxed RMW extends a release sequence without synchronising
// with its observers), which is a formal data race.  ThreadSanitizer
// reports exactly that interleaving.  The serve layer's whole value is
// that TSan machine-checks its publication protocol with zero
// suppressions, so it cannot sit on a primitive TSan rightly flags.
//
// This slot is the same design with the ordering gap closed: an
// acquire-exchange to lock, a RELEASE store to unlock on BOTH the reader
// and writer paths.  The critical section is a shared_ptr copy or swap —
// a refcount bump and two pointer moves, a few nanoseconds — so readers
// contend only while another pointer handoff is literally in flight.
// That makes load() wait-free-in-practice and mutex-free by construction:
// there is nothing here a thread can block on while an update writer does
// real work, which is the property the read-path contract
// (serve::ReadPathScope) actually guarantees.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

namespace iup::serve {

template <typename T>
class RcuSlot {
 public:
  RcuSlot() = default;
  explicit RcuSlot(std::shared_ptr<T> initial) : ptr_(std::move(initial)) {}

  RcuSlot(const RcuSlot&) = delete;
  RcuSlot& operator=(const RcuSlot&) = delete;

  /// Snapshot the published pointer (one refcount increment under the
  /// spin bit).  The returned shared_ptr keeps the pointee alive for as
  /// long as the caller holds it, independent of later store()s.
  std::shared_ptr<T> load() const {
    lock();
    std::shared_ptr<T> copy = ptr_;
    unlock();
    return copy;
  }

  /// Publish `next`, replacing the current pointer.  The previous value
  /// is released AFTER the slot unlocks — a pointee destructor (e.g. a
  /// Localizer teardown) must never run inside the critical section.
  void store(std::shared_ptr<T> next) {
    lock();
    ptr_.swap(next);
    unlock();
  }

 private:
  void lock() const {
    int spins = 0;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      // The holder is mid-pointer-copy; on a loaded single core it may
      // also be preempted, so bounded spinning falls back to yield
      // rather than burning the scheduling quantum.
      if (++spins == 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

  void unlock() const { flag_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> flag_{false};
  std::shared_ptr<T> ptr_;
};

}  // namespace iup::serve
