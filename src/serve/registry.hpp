// Shard registry: lock-free site lookup over an RCU-published map.
//
// The site set changes only at register_site/drop_site — rare,
// administrative events — while every localize resolves a site name.  The
// registry therefore applies the same copy-on-write discipline as the
// shards themselves: the name -> shard map is an immutable value in an
// RcuSlot (see rcu_slot.hpp); find() loads it and looks up without any
// mutex, and mutators copy the map, edit the copy, and publish it with
// one slot store (serialised among themselves by a writer mutex).  A reader
// that resolved a shard just before a concurrent drop keeps a valid shard
// serving the last published bundle — exactly the snapshot-isolation
// story of the store, one level up.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/shard.hpp"

namespace iup::serve {

class ShardRegistry {
 public:
  using ShardPtr = std::shared_ptr<SiteShard>;

  ShardRegistry();

  ShardRegistry(const ShardRegistry&) = delete;
  ShardRegistry& operator=(const ShardRegistry&) = delete;

  /// Lock-free lookup; nullptr for unknown sites.  Safe from any thread,
  /// including inside a ReadPathScope.
  ShardPtr find(const std::string& site) const;

  /// Insert a fresh shard for `site` (copy-on-write republish).  Returns
  /// the existing shard unchanged when the site is already present —
  /// emplace semantics, so racing registrations converge on one shard.
  ShardPtr emplace(const std::string& site);

  /// Remove `site` (copy-on-write republish); false when unknown.  The
  /// removed shard stays valid for readers that already resolved it.
  bool erase(const std::string& site);

  /// Registered site names, sorted (copy of the current published map).
  std::vector<std::string> sites() const;

 private:
  using Map = std::unordered_map<std::string, ShardPtr>;
  using MapPtr = std::shared_ptr<const Map>;

  /// Serialises mutators only; find() never touches it.
  mutable std::mutex writer_mutex_;
  RcuSlot<const Map> map_;
};

}  // namespace iup::serve
