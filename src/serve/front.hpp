// ServeFront — a leader/combiner batching front over the shard layer.
//
// High-QPS serving arrives as many concurrent SINGLE-measurement localize
// calls, but the localizers amortise per-call setup best over batches.
// ServeFront coalesces: a caller enqueues its measurement and either
// becomes the LEADER — waits up to max_wait for up to max_batch ops to
// accumulate, then computes the whole panel — or a FOLLOWER, blocking
// until the leader fills in its slot.  The next arrival after a leader
// claims its batch starts forming the next one, so batch formation
// pipelines with batch compute.
//
// Routing is deterministic: a batch's ops are grouped by site in first-
// appearance order, each group resolves its shard ONCE and computes every
// member against that single published bundle (one atomic load per group,
// not per op), fanning out over iup::parallel.  Since each op is an
// independent match against an immutable bundle, every result is exactly
// the estimate a direct Engine::localize against the same published
// version returns — batching changes scheduling, never bits
// (tests/serve_test.cpp proves order-independence).
//
// Locking: the front's queue mutex exists to COALESCE, not to guard
// engine state — it is deliberately outside the zero-locks contract,
// which covers the state mutexes (Engine commit lock, shard update
// locks).  The compute itself runs on the lock-free shard read path
// inside a ReadPathScope, with the queue mutex released.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "loc/localizer.hpp"
#include "serve/registry.hpp"

namespace iup::serve {

struct ServeFrontOptions {
  /// A leader closes its batch at this many ops even before the wait runs
  /// out.  1 degenerates to direct per-call dispatch (no coalescing).
  std::size_t max_batch = 32;
  /// How long a leader holds its batch open for followers.  The bound on
  /// added p50 latency under low concurrency; at saturation batches fill
  /// before the deadline and the wait never applies.
  std::chrono::microseconds max_wait{200};
  /// Thread budget for the per-group panel fan-out (0 = all hardware
  /// threads).  Results are bit-identical for any value.
  std::size_t threads = 1;
};

class ServeFront {
 public:
  /// `registry` must outlive the front (the Engine owning it does).
  explicit ServeFront(const ShardRegistry& registry,
                      ServeFrontOptions options = {});

  ServeFront(const ServeFront&) = delete;
  ServeFront& operator=(const ServeFront&) = delete;

  /// Localize one measurement against `site`'s published version, batched
  /// with whatever concurrent calls land in the same window.  Blocks the
  /// caller until its result is ready (a leader computes, a follower
  /// waits).  Same Status surface as Engine::localize.
  api::Result<loc::LocalizationEstimate> localize(
      const std::string& site, std::span<const double> measurement);

  const ServeFrontOptions& options() const { return options_; }

  // Coalescing observability (relaxed counters; exact once callers join).
  std::uint64_t total_requests() const;
  std::uint64_t total_batches() const;
  std::uint64_t largest_batch() const;

 private:
  /// One enqueued call; lives on its caller's stack for the whole wait, so
  /// the measurement span stays valid until the leader fills `result`.
  struct Op {
    const std::string* site;
    std::span<const double> measurement;
    api::Result<loc::LocalizationEstimate> result;
    bool claimed = false;  ///< a leader took this op into its batch
    bool done = false;     ///< the result slot is filled
    Op(const std::string& s, std::span<const double> m)
        : site(&s),
          measurement(m),
          result(api::Status::internal("ServeFront: not computed")) {}
  };

  /// Compute every op of one claimed batch (queue mutex NOT held).
  void run_batch(const std::vector<Op*>& batch);

  const ShardRegistry& registry_;
  ServeFrontOptions options_;

  std::mutex queue_mutex_;
  std::condition_variable cv_;
  std::vector<Op*> pending_;
  bool leader_active_ = false;

  std::atomic<std::uint64_t> total_requests_{0};
  std::atomic<std::uint64_t> total_batches_{0};
  std::atomic<std::uint64_t> largest_batch_{0};
};

}  // namespace iup::serve
