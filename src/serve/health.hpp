// Per-site health state for the continuous-update pipeline.
//
// One SiteHealthCounters lives in each SiteShard, next to the published
// bundle it describes.  Three writers feed it, none of them on the serve
// read path: the Engine's update paths (commit outcomes + SPD fallback
// deltas), the ingest::ObservationBuffer (quarantine tallies) and the
// ingest::UpdateSupervisor (state machine, backoff/breaker transitions).
// Every field is a relaxed atomic: the counters are monotonic tallies (or
// a last-writer-wins state word) read for monitoring and by tests after
// joins — they order nothing, so they stay cheap enough to leave on in
// release builds, exactly like linalg::SpdStats.  Readers assemble a
// consistent-enough view through api::Engine::site_health(); individual
// loads may interleave with concurrent updates, which is fine for a
// diagnostic surface (no serving decision reads these counters).
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace iup::serve {

/// Where a site sits in the supervised update lifecycle.  Serving is
/// NEVER gated on this state: a degraded site keeps serving its last-good
/// published bundle; the state only describes the update pipeline.
///
///   healthy -> updating -> healthy            (commit landed)
///   updating -> backoff -> updating           (retry with exp. backoff)
///   backoff -> degraded                       (breaker: too many failures)
///   degraded -> updating -> healthy           (probe succeeded: recovered)
enum class SiteState : std::uint32_t {
  kHealthy = 0,   ///< last update attempt (if any) committed
  kUpdating = 1,  ///< an update attempt is in flight
  kBackoff = 2,   ///< waiting out the retry backoff after a failure
  kDegraded = 3,  ///< circuit breaker open: serving last-good, probing
};

constexpr std::string_view to_string(SiteState state) {
  switch (state) {
    case SiteState::kHealthy: return "HEALTHY";
    case SiteState::kUpdating: return "UPDATING";
    case SiteState::kBackoff: return "BACKOFF";
    case SiteState::kDegraded: return "DEGRADED";
  }
  return "UNKNOWN";
}

struct SiteHealthCounters {
  /// SiteState word (last writer wins; the supervisor is the only writer
  /// once a site is watched).
  std::atomic<std::uint32_t> state{0};

  // --- update outcomes (Engine::update records these for every caller,
  // supervised or not) ------------------------------------------------
  std::atomic<std::uint64_t> updates_ok{0};
  std::atomic<std::uint64_t> updates_failed{0};

  // --- supervisor state machine ---------------------------------------
  std::atomic<std::uint64_t> update_attempts{0};
  std::atomic<std::uint64_t> consecutive_failures{0};
  std::atomic<std::uint64_t> drift_triggers{0};   ///< EWMA crossed threshold
  std::atomic<std::uint64_t> deadline_trips{0};   ///< kDeadlineExceeded
  std::atomic<std::uint64_t> breaker_trips{0};    ///< entered kDegraded
  std::atomic<std::uint64_t> recoveries{0};       ///< left kDegraded

  // --- ingest / quarantine (ObservationBuffer) ------------------------
  std::atomic<std::uint64_t> observations_accepted{0};
  std::atomic<std::uint64_t> quarantine_non_finite{0};
  std::atomic<std::uint64_t> quarantine_out_of_range{0};
  std::atomic<std::uint64_t> quarantine_unknown_link{0};
  std::atomic<std::uint64_t> quarantine_unknown_cell{0};
  /// Source id absent from / mismatching the site's registered source
  /// table (multi-radio model; zero for legacy source-less sites).
  std::atomic<std::uint64_t> quarantine_unknown_source{0};
  std::atomic<std::uint64_t> quarantine_overflow{0};  ///< buffer at capacity
  /// Largest observation day streamed for the site; together with the
  /// published snapshot's day this is the staleness metadata a degraded
  /// site serves under.
  std::atomic<std::uint64_t> last_observed_day{0};

  // --- SPD solve-path fallbacks attributed to this site ----------------
  // Deltas of the process-wide linalg::spd_stats() sampled around each
  // update's solve + refresh.  With updates of DIFFERENT sites running
  // concurrently the windows overlap and a fallback may be attributed to
  // the wrong site (or double-counted); the per-site split is a
  // diagnostic for "which deployment's normal equations are degrading",
  // not an exact ledger — the process-global spd_stats() remains the
  // authoritative total.
  std::atomic<std::uint64_t> spd_cholesky_failures{0};
  std::atomic<std::uint64_t> spd_bump_recoveries{0};
  std::atomic<std::uint64_t> spd_lu_fallbacks{0};

  /// Raise `last_observed_day` to `day` (monotonic max, relaxed).
  void note_observed_day(std::uint64_t day) {
    std::uint64_t seen = last_observed_day.load(std::memory_order_relaxed);
    while (day > seen && !last_observed_day.compare_exchange_weak(
                             seen, day, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace iup::serve
