#include "serve/front.hpp"

#include <algorithm>
#include <exception>
#include <unordered_map>
#include <utility>

#include "parallel/thread_pool.hpp"

namespace iup::serve {

ServeFront::ServeFront(const ShardRegistry& registry,
                       ServeFrontOptions options)
    : registry_(registry), options_(options) {
  if (options_.max_batch == 0) options_.max_batch = 1;
}

std::uint64_t ServeFront::total_requests() const {
  return total_requests_.load(std::memory_order_relaxed);
}

std::uint64_t ServeFront::total_batches() const {
  return total_batches_.load(std::memory_order_relaxed);
}

std::uint64_t ServeFront::largest_batch() const {
  return largest_batch_.load(std::memory_order_relaxed);
}

api::Result<loc::LocalizationEstimate> ServeFront::localize(
    const std::string& site, std::span<const double> measurement) {
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  Op op(site, measurement);

  std::unique_lock<std::mutex> lock(queue_mutex_);
  pending_.push_back(&op);
  if (leader_active_) {
    // A leader is already collecting; wake it in case this op fills its
    // batch, then wait as a follower.  Three exits: our result is ready
    // (done), our op was claimed into a batch still computing (keep
    // waiting for done), or the leader left without claiming us (it hit
    // max_batch first) — then lead the next batch ourselves, our op still
    // sitting in pending_.
    cv_.notify_all();
    while (true) {
      cv_.wait(lock, [&] { return op.done || !leader_active_; });
      if (op.done) return std::move(op.result);
      if (!op.claimed) break;  // unclaimed and leaderless: take over
      cv_.wait(lock, [&] { return op.done; });
      return std::move(op.result);
    }
  }

  leader_active_ = true;
  const auto deadline = std::chrono::steady_clock::now() + options_.max_wait;
  cv_.wait_until(lock, deadline,
                 [&] { return pending_.size() >= options_.max_batch; });
  std::vector<Op*> batch;
  batch.swap(pending_);
  for (Op* claimed : batch) claimed->claimed = true;
  leader_active_ = false;
  // Wake parked followers NOT in this batch so one of them leads the next
  // one while we compute (formation pipelines with compute).
  cv_.notify_all();
  lock.unlock();

  total_batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = largest_batch_.load(std::memory_order_relaxed);
  while (seen < batch.size() && !largest_batch_.compare_exchange_weak(
                                    seen, batch.size(),
                                    std::memory_order_relaxed)) {
  }

  run_batch(batch);

  lock.lock();
  for (Op* done : batch) done->done = true;
  cv_.notify_all();
  // Our own op is complete (we computed it); followers wake on the flags.
  return std::move(op.result);
}

void ServeFront::run_batch(const std::vector<Op*>& batch) {
  // Group by site in first-appearance order: deterministic routing, one
  // shard resolution + one published-bundle load per group.
  std::vector<std::vector<std::size_t>> groups;
  std::unordered_map<std::string, std::size_t> group_of;
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const auto [it, fresh] =
        group_of.try_emplace(*batch[k]->site, groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(k);
  }

  ReadPathScope read_scope;
  const std::size_t threads = parallel::resolve_threads(options_.threads);
  for (const std::vector<std::size_t>& group : groups) {
    const std::string& site = *batch[group.front()]->site;
    const ShardRegistry::ShardPtr shard = registry_.find(site);
    if (shard == nullptr) {
      for (const std::size_t k : group) {
        batch[k]->result =
            api::Status::not_found("localize: unknown site '" + site + "'");
      }
      continue;
    }
    // ONE bundle for the whole group: every member matches against the
    // same published version even if an update lands mid-batch.
    const PublishedPtr bundle = shard->published();
    const std::size_t links = bundle->snapshot->database().rows();
    if (bundle->localizer == nullptr) {
      for (const std::size_t k : group) {
        batch[k]->result = api::Status::failed_precondition(
            "localize: this localizer needs deployment geometry; call "
            "attach_deployment('" + site + "', ...) first");
      }
      continue;
    }

    const auto compute = [&](std::size_t k) {
      Op& op = *batch[k];
      if (op.measurement.size() != links) {
        op.result = api::Status::invalid_argument(
            "localize: measurement has " +
            std::to_string(op.measurement.size()) + " entries but site '" +
            site + "' has " + std::to_string(links) + " links");
        return;
      }
      op.result = bundle->localizer->localize(op.measurement);
    };
    try {
      if (threads <= 1 || group.size() <= 1) {
        for (const std::size_t k : group) compute(k);
      } else {
        // Each op owns its slot; the fan-out is bit-identical to the loop.
        parallel::parallel_for(
            threads, group.size(),
            [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
              for (std::size_t g = begin; g < end; ++g) compute(group[g]);
            });
      }
    } catch (const std::exception& e) {
      for (const std::size_t k : group) {
        if (batch[k]->result.ok() ||
            batch[k]->result.status().message() ==
                "ServeFront: not computed") {
          batch[k]->result =
              api::Status::internal(std::string("localize: ") + e.what());
        }
      }
    }
  }
}

}  // namespace iup::serve
