// iup::serve — per-site shards with RCU-style snapshot publication.
//
// The serving workload is a huge localize fan-out against a fingerprint
// map that updates rarely (the participatory-sensing DFL loop): classic
// read-copy-update.  Each site gets a SiteShard owning
//
//   * the PUBLISHED version: one immutable PublishedSite bundle
//     {snapshot, localizer} in an RcuSlot (see rcu_slot.hpp for why not
//     std::atomic<std::shared_ptr>).  Readers load the pointer, compute
//     against the bundle, and drop it — no mutex, ever.  Writers build
//     the next bundle entirely off to the side and publish it with a
//     single slot store, so a reader either sees the old version or the
//     new one, never a mix; a reader that loaded a bundle keeps it valid
//     for as long as it holds the pointer, even across store eviction or
//     drop_site (shared_ptr lifetime).
//   * the writer-side warm-start caches (solver factor + LRR ADMM state),
//     guarded by the shard's update mutex — taken by update paths only.
//
// Zero-locks-on-the-read-path is machine-checked, not aspirational: every
// serve/api state-mutex acquisition routes through lock_for_update() /
// Engine::state_lock(), which records a violation (and asserts, in Debug)
// when it fires inside a ReadPathScope.  tests/serve_test.cpp drives
// readers through the scope under TSan and requires the violation counter
// to stay zero.  (The RcuSlot's spin bit is an atomic word held for a
// pointer copy — not a mutex, and never held across real work.)
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "api/snapshot.hpp"
#include "core/lrr.hpp"
#include "linalg/matrix.hpp"
#include "loc/localizer.hpp"
#include "serve/health.hpp"
#include "serve/rcu_slot.hpp"

namespace iup::serve {

/// One published, immutable serving version of a site: the snapshot and
/// the localizer built over its database.  The bundle owns both, so a
/// localizer can never outlive the data it matches against — holding the
/// bundle pins the exact {database, reference set, correlation, matcher}
/// a result was computed from (the bit-identity anchor for the
/// localize-during-update guarantee).
struct PublishedSite {
  api::SnapshotPtr snapshot;
  /// Null when the configured localizer needs deployment geometry that is
  /// not attached yet (api::Engine::attach_deployment republishes).
  std::shared_ptr<const loc::Localizer> localizer;
};

using PublishedPtr = std::shared_ptr<const PublishedSite>;

/// Marks the current thread as being on the lock-free serve read path for
/// the scope's lifetime (nestable).  State-mutex acquisitions inside the
/// scope are counted as violations — see read_path_lock_violations().
class ReadPathScope {
 public:
  ReadPathScope();
  ~ReadPathScope();
  ReadPathScope(const ReadPathScope&) = delete;
  ReadPathScope& operator=(const ReadPathScope&) = delete;
};

/// Process-wide count of state-mutex acquisitions that happened inside a
/// ReadPathScope.  Zero in steady state by construction; tests and the
/// soak harness assert it stays zero.
std::uint64_t read_path_lock_violations();

/// True on a thread currently inside a ReadPathScope.
bool in_read_path();

/// Record a state-mutex acquisition: bumps the violation counter (and
/// asserts, in Debug builds) when called inside a ReadPathScope.  Every
/// serve/api state mutex routes its lock() through this.
void note_state_lock_acquired();

/// Writer-side warm-start caches of one site, version-paired so a cached
/// entry is consulted only when it was derived from the exact snapshot
/// version the next solve reads (any version jump starts cold).  Guarded
/// by the owning shard's update mutex; entries are exchanged as pointers
/// under the lock and copied outside it.
struct WarmCaches {
  std::uint64_t factor_version = 0;
  std::shared_ptr<const linalg::Matrix> factor;  ///< converged solver L
  std::uint64_t lrr_version = 0;
  std::shared_ptr<const core::LrrWarmStart> lrr;  ///< ADMM refresh state
};

/// One site's serving state: the published bundle (lock-free readers) and
/// the writer-side caches (update mutex).  Created by the registry at
/// registration; readers that still hold the shard after drop_site keep a
/// valid object serving the last published version.
class SiteShard {
 public:
  explicit SiteShard(std::string site) : site_(std::move(site)) {}

  SiteShard(const SiteShard&) = delete;
  SiteShard& operator=(const SiteShard&) = delete;

  const std::string& site() const { return site_; }

  /// The current published version (never null once the registration
  /// publish has run).  THE read-path entry point: no mutex, ever.
  PublishedPtr published() const { return published_.load(); }

  /// Replace the published version (release handoff).  Callers serialise
  /// publication order themselves (Engine publishes under its commit
  /// lock, so versions can never publish out of order).
  void publish(PublishedPtr next) { published_.store(std::move(next)); }

  /// Lock the writer-side caches.  Asserts the calling thread is not on
  /// the serve read path (the zero-locks contract).
  std::unique_lock<std::mutex> lock_for_update() const {
    note_state_lock_acquired();
    return std::unique_lock<std::mutex>(update_mutex_);
  }

  /// Warm caches; callers must hold lock_for_update() (the reference
  /// parameter makes that contract explicit at every call site).
  WarmCaches& caches(const std::unique_lock<std::mutex>& lock) const {
    ensure_holds(lock);
    return caches_;
  }

  /// Per-site health/diagnostic counters (see serve/health.hpp).  All
  /// fields are relaxed atomics, so no lock is required from any thread;
  /// like the published bundle, the counters survive drop_site for
  /// readers that still hold the shard.
  SiteHealthCounters& health() const { return health_; }

 private:
  void ensure_holds(const std::unique_lock<std::mutex>& lock) const;

  std::string site_;
  RcuSlot<const PublishedSite> published_;
  mutable std::mutex update_mutex_;
  mutable WarmCaches caches_;
  mutable SiteHealthCounters health_;
};

}  // namespace iup::serve
