// Epsilon-Support-Vector Regression with an RBF kernel, trained by
// Sequential Minimal Optimization (SMO).
//
// This is the learning substrate for the RASS comparator (Figs. 23/24):
// RASS [Zhang et al., TPDS'13] trains SVR models that map an RSS vector to
// target coordinates.  RASS itself is closed source, so we re-implement
// its regression stage from scratch on top of this solver.
//
// Formulation (dual, beta_i = alpha_i - alpha_i^*):
//   max  -1/2 beta^T K beta - eps ||beta||_1 + y^T beta
//   s.t. sum_i beta_i = 0,  -C <= beta_i <= C
// SMO optimises one (i, j) pair at a time, exactly solving the piecewise
// quadratic 1-D subproblem (the |beta| kinks make it piecewise).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace iup::baselines {

struct SvrOptions {
  double c = 10.0;          ///< box constraint
  double epsilon = 0.5;     ///< insensitive-tube half width (in target units)
  double gamma = 0.0;       ///< RBF width; 0 = 1 / (num_features * var)
  std::size_t max_epochs = 200;
  double tol = 1e-5;        ///< objective-improvement stopping tolerance
  std::uint64_t seed = 17;  ///< pair-visit shuffling
  /// Worker threads for the kernel-matrix construction (each row is owned
  /// by exactly one chunk, so results are bit-identical for any value).
  /// The SMO pair sweep itself is inherently sequential and stays serial;
  /// its inner loops are vectorised through the SIMD kernel layer instead.
  std::size_t threads = 1;
};

class Svr {
 public:
  explicit Svr(SvrOptions options = {});

  /// Fit on rows of `x` (samples x features) against `y`.
  /// Features are standardised internally (zero mean, unit variance).
  void fit(const linalg::Matrix& x, const std::vector<double>& y);

  /// Predict a single sample (length = feature count).
  double predict(std::span<const double> features) const;

  /// Number of support vectors (|beta| > 1e-9), for tests/diagnostics.
  std::size_t support_vector_count() const;

  bool trained() const { return trained_; }
  const SvrOptions& options() const { return options_; }

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;
  std::vector<double> standardize(std::span<const double> raw) const;

  SvrOptions options_;
  bool trained_ = false;
  double gamma_ = 0.0;
  double bias_ = 0.0;
  linalg::Matrix train_x_;          ///< standardised training samples
  std::vector<double> beta_;
  std::vector<double> feat_mean_;
  std::vector<double> feat_std_;
};

}  // namespace iup::baselines
