// Traditional whole-database updating and the human-labor cost model
// (Section VI-C, Fig. 20).
//
// A traditional fingerprint system re-surveys every grid location,
// spending Delta_t_move seconds walking between locations and
// samples * Delta_t_collect seconds standing at each one.  iUpdater
// surveys only the n reference locations with a smaller sample budget.
// The paper's headline numbers follow directly from this model:
//   office, 94 cells, 50 samples: 93*5 s + 50*0.5 s*94 = 46.9 min
//   iUpdater, 8 refs, 5 samples:   7*5 s +  5*0.5 s*8  = 55 s  (97.9 %)
//   traditional with 5 samples:   93*5 s +  5*0.5 s*94 = 700 s (92.1 %)
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "sim/sampler.hpp"

namespace iup::baselines {

struct LaborParams {
  double move_time_s = 5.0;        ///< Delta_t_m, walk between two locations
  double collect_interval_s = 0.5; ///< Delta_t_c, one RSS probe (beacon rate)
};

/// Time [s] to survey `locations` cells with `samples` readings each.
double survey_time_s(std::size_t locations, std::size_t samples,
                     const LaborParams& params = {});

/// Traditional whole-database update time [s].
double traditional_update_time_s(std::size_t total_cells,
                                 std::size_t samples = 50,
                                 const LaborParams& params = {});

/// iUpdater update time [s]: reference locations only.
double iupdater_update_time_s(std::size_t reference_cells,
                              std::size_t samples = 5,
                              const LaborParams& params = {});

/// Fractional saving of iUpdater over a traditional survey (0..1).
double labor_saving_fraction(std::size_t total_cells,
                             std::size_t traditional_samples,
                             std::size_t reference_cells,
                             std::size_t iupdater_samples,
                             const LaborParams& params = {});

/// The traditional updater itself: re-survey the entire database (used as
/// the "100 % measured" arm of Fig. 17 and as the labor-cost comparator).
linalg::Matrix traditional_full_resurvey(sim::Sampler& sampler,
                                         std::size_t day,
                                         std::size_t samples = 50);

}  // namespace iup::baselines
