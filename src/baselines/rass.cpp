#include "baselines/rass.hpp"

namespace iup::baselines {

Rass::Rass(const linalg::Matrix& database, const sim::Deployment& deployment,
           RassOptions options)
    : deployment_(&deployment),
      svr_x_(options.svr),
      svr_y_(options.svr) {
  const std::size_t n = database.cols();
  // Training set: one sample per grid cell, features = the M link RSS.
  linalg::Matrix samples = database.transpose();
  std::vector<double> tx(n), ty(n);
  for (std::size_t j = 0; j < n; ++j) {
    const geom::Point2 c = deployment.cell_center(j);
    tx[j] = c.x;
    ty[j] = c.y;
  }
  svr_x_.fit(samples, tx);
  svr_y_.fit(samples, ty);
}

geom::Point2 Rass::localize_position(
    std::span<const double> measurement) const {
  return {svr_x_.predict(measurement), svr_y_.predict(measurement)};
}

loc::LocalizationEstimate Rass::localize(
    std::span<const double> measurement) const {
  const geom::Point2 p = localize_position(measurement);
  loc::LocalizationEstimate est;
  est.cell = deployment_->nearest_cell(p);
  est.score = 0.0;
  return est;
}

}  // namespace iup::baselines
