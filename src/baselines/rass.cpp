#include "baselines/rass.hpp"

#include <limits>

#include "parallel/thread_pool.hpp"

namespace iup::baselines {

namespace {

// Deterministic holdout split for the C-grid: every kHoldoutStride-th
// sample validates, the rest train.  Training-set error would favour the
// least-regularised (largest-C) candidate unconditionally; the holdout
// measures what the grid actually needs to rank — generalisation to
// cells the model did not fit.
constexpr std::size_t kHoldoutStride = 4;

double holdout_mse(const Svr& model, const linalg::Matrix& samples,
                   const std::vector<double>& targets) {
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < samples.rows(); i += kHoldoutStride) {
    const double d = model.predict(samples.row_span(i)) - targets[i];
    acc += d * d;
    ++count;
  }
  return acc / static_cast<double>(count);
}

}  // namespace

Rass::Rass(const linalg::Matrix& database, const sim::Deployment& deployment,
           RassOptions options)
    : deployment_(&deployment),
      svr_x_(options.svr),
      svr_y_(options.svr) {
  const std::size_t n = database.cols();
  // Training set: one sample per grid cell, features = the M link RSS.
  linalg::Matrix samples = database.transpose();
  std::vector<double> tx(n), ty(n);
  for (std::size_t j = 0; j < n; ++j) {
    const geom::Point2 c = deployment.cell_center(j);
    tx[j] = c.x;
    ty[j] = c.y;
  }

  const std::size_t threads = parallel::resolve_threads(options.threads);
  // Train the two per-axis models on the full grid, concurrently when the
  // budget allows (independent models — order cannot matter).
  const auto fit_axes = [&](SvrOptions x_options, SvrOptions y_options) {
    x_options.threads = threads;
    y_options.threads = threads;
    svr_x_ = Svr(x_options);
    svr_y_ = Svr(y_options);
    parallel::parallel_for(
        std::min<std::size_t>(threads, 2), 2,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t k = begin; k < end; ++k) {
            if (k == 0) {
              svr_x_.fit(samples, tx);
            } else {
              svr_y_.fit(samples, ty);
            }
          }
        });
  };
  if (options.c_grid.empty()) {
    fit_axes(options.svr, options.svr);
    return;
  }

  // Grid search: every (C candidate, axis) pair is one independent fit on
  // the holdout-complement rows, all batched through a single fan-out
  // (each per-fit kernel-matrix construction gets the same thread budget,
  // its fan-out nesting under this one).  Each slot of `fits` has exactly
  // one owner, so the trained models are bit-identical for any thread
  // count; the winner per axis is picked serially afterwards by
  // strictly-lower holdout MSE (first candidate wins ties), then refit on
  // the full grid so the deployed models use every surveyed cell.
  std::vector<std::size_t> train_rows;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % kHoldoutStride != 0) train_rows.push_back(i);
  }
  const linalg::Matrix train_samples = samples.select_rows(train_rows);
  std::vector<double> train_tx(train_rows.size());
  std::vector<double> train_ty(train_rows.size());
  for (std::size_t r = 0; r < train_rows.size(); ++r) {
    train_tx[r] = tx[train_rows[r]];
    train_ty[r] = ty[train_rows[r]];
  }

  const std::size_t grid = options.c_grid.size();
  std::vector<Svr> fits(2 * grid, Svr(options.svr));
  parallel::parallel_for(
      threads, 2 * grid,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t k = begin; k < end; ++k) {
          SvrOptions candidate = options.svr;
          candidate.c = options.c_grid[k % grid];
          candidate.threads = threads;
          fits[k] = Svr(candidate);
          fits[k].fit(train_samples, k < grid ? train_tx : train_ty);
        }
      });
  std::size_t best_x = 0;
  std::size_t best_y = 0;
  double best_x_mse = std::numeric_limits<double>::infinity();
  double best_y_mse = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < grid; ++g) {
    const double mse_x = holdout_mse(fits[g], samples, tx);
    if (mse_x < best_x_mse) {
      best_x_mse = mse_x;
      best_x = g;
    }
    const double mse_y = holdout_mse(fits[grid + g], samples, ty);
    if (mse_y < best_y_mse) {
      best_y_mse = mse_y;
      best_y = g;
    }
  }

  // Final fits: the winning C per axis on the full training grid.
  SvrOptions final_x = options.svr;
  final_x.c = options.c_grid[best_x];
  SvrOptions final_y = options.svr;
  final_y.c = options.c_grid[best_y];
  fit_axes(final_x, final_y);
}

geom::Point2 Rass::localize_position(
    std::span<const double> measurement) const {
  return {svr_x_.predict(measurement), svr_y_.predict(measurement)};
}

loc::LocalizationEstimate Rass::localize(
    std::span<const double> measurement) const {
  const geom::Point2 p = localize_position(measurement);
  loc::LocalizationEstimate est;
  est.cell = deployment_->nearest_cell(p);
  est.score = 0.0;
  return est;
}

}  // namespace iup::baselines
