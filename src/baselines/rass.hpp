// RASS comparator (Zhang et al., "RASS: a real-time, accurate and scalable
// system for tracking transceiver-free objects", TPDS 2013) — the paper's
// state-of-the-art baseline in Figs. 23/24.
//
// RASS trains Support Vector Regression models on the fingerprint database
// to map an online RSS vector to continuous target coordinates; the paper
// evaluates it both with the stale original database ("RASS w/o rec.") and
// with iUpdater's reconstructed database ("RASS w/ rec.").  Our
// re-implementation follows that structure: one epsilon-SVR per coordinate
// axis, trained on fingerprint columns vs. grid-cell centres.
#pragma once

#include <memory>
#include <vector>

#include "baselines/svr.hpp"
#include "geom/geometry.hpp"
#include "loc/localizer.hpp"

namespace iup::baselines {

struct RassOptions {
  SvrOptions svr;
  /// Optional hyperparameter grid for the box constraint C: when
  /// non-empty, one SVR per (candidate, axis) is trained on a
  /// deterministic holdout split — the whole grid batched through one
  /// iup::parallel fan-out — the candidate with the lowest held-out mean
  /// squared error wins per axis (ties break to the earliest candidate,
  /// so the selection is deterministic for any thread count), and the
  /// winner is refit on the full grid.  Empty (default) trains svr.c
  /// directly, exactly the pre-grid behaviour.
  std::vector<double> c_grid;
  /// Worker threads for the grid fan-out and the per-fit kernel-matrix
  /// construction (0 = all hardware threads).  Bit-identical results for
  /// any value: every candidate fit and every kernel-matrix row has
  /// exactly one owner.
  std::size_t threads = 1;
};

class Rass final : public loc::Localizer {
 public:
  /// Train on a fingerprint database: column j of `database` is the RSS
  /// signature of a target at `deployment`'s cell j.
  Rass(const linalg::Matrix& database, const sim::Deployment& deployment,
       RassOptions options = {});

  /// Continuous coordinate estimate (the natural RASS output).
  geom::Point2 localize_position(std::span<const double> measurement) const;

  /// Localizer interface: continuous estimate snapped to the nearest cell.
  loc::LocalizationEstimate localize(
      std::span<const double> measurement) const override;

  std::string name() const override { return "RASS"; }

 private:
  const sim::Deployment* deployment_;
  Svr svr_x_;
  Svr svr_y_;
};

}  // namespace iup::baselines
