// RASS comparator (Zhang et al., "RASS: a real-time, accurate and scalable
// system for tracking transceiver-free objects", TPDS 2013) — the paper's
// state-of-the-art baseline in Figs. 23/24.
//
// RASS trains Support Vector Regression models on the fingerprint database
// to map an online RSS vector to continuous target coordinates; the paper
// evaluates it both with the stale original database ("RASS w/o rec.") and
// with iUpdater's reconstructed database ("RASS w/ rec.").  Our
// re-implementation follows that structure: one epsilon-SVR per coordinate
// axis, trained on fingerprint columns vs. grid-cell centres.
#pragma once

#include <memory>

#include "baselines/svr.hpp"
#include "geom/geometry.hpp"
#include "loc/localizer.hpp"

namespace iup::baselines {

struct RassOptions {
  SvrOptions svr;
};

class Rass final : public loc::Localizer {
 public:
  /// Train on a fingerprint database: column j of `database` is the RSS
  /// signature of a target at `deployment`'s cell j.
  Rass(const linalg::Matrix& database, const sim::Deployment& deployment,
       RassOptions options = {});

  /// Continuous coordinate estimate (the natural RASS output).
  geom::Point2 localize_position(std::span<const double> measurement) const;

  /// Localizer interface: continuous estimate snapped to the nearest cell.
  loc::LocalizationEstimate localize(
      std::span<const double> measurement) const override;

  std::string name() const override { return "RASS"; }

 private:
  const sim::Deployment* deployment_;
  Svr svr_x_;
  Svr svr_y_;
};

}  // namespace iup::baselines
