#include "baselines/traditional.hpp"

namespace iup::baselines {

double survey_time_s(std::size_t locations, std::size_t samples,
                     const LaborParams& params) {
  if (locations == 0) return 0.0;
  const double moves = static_cast<double>(locations - 1);
  return moves * params.move_time_s +
         static_cast<double>(samples) * params.collect_interval_s *
             static_cast<double>(locations);
}

double traditional_update_time_s(std::size_t total_cells, std::size_t samples,
                                 const LaborParams& params) {
  return survey_time_s(total_cells, samples, params);
}

double iupdater_update_time_s(std::size_t reference_cells,
                              std::size_t samples, const LaborParams& params) {
  return survey_time_s(reference_cells, samples, params);
}

double labor_saving_fraction(std::size_t total_cells,
                             std::size_t traditional_samples,
                             std::size_t reference_cells,
                             std::size_t iupdater_samples,
                             const LaborParams& params) {
  const double t_trad =
      traditional_update_time_s(total_cells, traditional_samples, params);
  if (t_trad <= 0.0) return 0.0;
  const double t_iup =
      iupdater_update_time_s(reference_cells, iupdater_samples, params);
  return 1.0 - t_iup / t_trad;
}

linalg::Matrix traditional_full_resurvey(sim::Sampler& sampler,
                                         std::size_t day,
                                         std::size_t samples) {
  return sampler.survey_full(day, samples);
}

}  // namespace iup::baselines
