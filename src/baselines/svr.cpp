#include "baselines/svr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "linalg/vec.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"

namespace iup::baselines {

Svr::Svr(SvrOptions options) : options_(options) {
  if (options_.c <= 0.0) throw std::invalid_argument("Svr: C must be > 0");
  if (options_.epsilon < 0.0) {
    throw std::invalid_argument("Svr: epsilon must be >= 0");
  }
}

double Svr::kernel(std::span<const double> a, std::span<const double> b) const {
  return std::exp(
      -gamma_ * linalg::kernels::diff_norm_sq(a.data(), b.data(), a.size()));
}

std::vector<double> Svr::standardize(std::span<const double> raw) const {
  std::vector<double> out(raw.size());
  for (std::size_t k = 0; k < raw.size(); ++k) {
    out[k] = (raw[k] - feat_mean_[k]) / feat_std_[k];
  }
  return out;
}

void Svr::fit(const linalg::Matrix& x, const std::vector<double>& y) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  if (n != y.size() || n < 2) {
    throw std::invalid_argument("Svr::fit: bad training-set shape");
  }

  // Standardise features.
  feat_mean_.assign(d, 0.0);
  feat_std_.assign(d, 0.0);
  for (std::size_t k = 0; k < d; ++k) {
    const auto col = x.col(k);
    feat_mean_[k] = linalg::mean(col);
    feat_std_[k] = std::max(linalg::stdev(col), 1e-9);
  }
  train_x_ = linalg::Matrix(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    train_x_.set_row(i, standardize(x.row_span(i)));
  }

  gamma_ = options_.gamma > 0.0
               ? options_.gamma
               : 1.0 / static_cast<double>(d);  // features are unit variance

  // Kernel matrix (training sets here are <= a few hundred samples).
  // Upper-triangle rows fan out over the pool — every row is written by
  // exactly one chunk, so the matrix is bit-identical for any thread
  // count; the mirror stays serial.
  linalg::Matrix kmat(n, n);
  parallel::parallel_for(
      parallel::resolve_threads(options_.threads), n,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = i; j < n; ++j) {
            kmat(i, j) =
                kernel(train_x_.row_span(i), train_x_.row_span(j));
          }
        }
      });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) kmat(j, i) = kmat(i, j);
  }

  beta_.assign(n, 0.0);
  std::vector<double> f(n, 0.0);  // f_k = sum_i beta_i K(i, k)
  const double c_box = options_.c;
  const double eps = options_.epsilon;

  // One pair update: exactly maximise the dual restricted to (i, j) with
  // beta_i + beta_j fixed.  Returns the objective improvement.
  const auto pair_update = [&](std::size_t i, std::size_t j) -> double {
    const double s = beta_[i] + beta_[j];
    const double eta = kmat(i, i) + kmat(j, j) - 2.0 * kmat(i, j);
    if (eta <= 1e-12) return 0.0;
    const double lo = std::max(-c_box, s - c_box);
    const double hi = std::min(c_box, s + c_box);
    if (lo >= hi) return 0.0;

    // Cross terms excluding i and j themselves.
    const double vi = f[i] - beta_[i] * kmat(i, i) - beta_[j] * kmat(i, j);
    const double vj = f[j] - beta_[i] * kmat(i, j) - beta_[j] * kmat(j, j);
    const double base = s * (kmat(j, j) - kmat(i, j)) + (vj - vi) +
                        (y[i] - y[j]);

    // Dual objective restricted to beta_i = t (up to a constant).
    const auto obj = [&](double t) {
      const double bj = s - t;
      return -0.5 * (kmat(i, i) * t * t + kmat(j, j) * bj * bj +
                     2.0 * kmat(i, j) * t * bj) -
             t * vi - bj * vj - eps * (std::abs(t) + std::abs(bj)) +
             y[i] * t + y[j] * bj;
    };

    // Candidate stationary points for each sign combination of
    // (beta_i, beta_j), plus the kink locations and the box edges.
    std::vector<double> candidates = {lo, hi};
    if (0.0 > lo && 0.0 < hi) candidates.push_back(0.0);
    if (s > lo && s < hi) candidates.push_back(s);
    for (const double si : {-1.0, 1.0}) {
      for (const double sj : {-1.0, 1.0}) {
        candidates.push_back(
            std::clamp((base - eps * (si - sj)) / eta, lo, hi));
      }
    }
    double best_t = beta_[i];
    double best_obj = obj(beta_[i]);
    for (const double t : candidates) {
      const double o = obj(t);
      if (o > best_obj + 1e-15) {
        best_obj = o;
        best_t = t;
      }
    }
    const double improvement = best_obj - obj(beta_[i]);
    if (improvement <= 0.0) return 0.0;

    const double new_i = best_t;
    const double new_j = s - best_t;
    const double di = new_i - beta_[i];
    const double dj = new_j - beta_[j];
    beta_[i] = new_i;
    beta_[j] = new_j;
    // Fused prediction refresh over two contiguous kernel rows.
    linalg::kernels::axpy2(di, kmat.row_span(i).data(), dj,
                           kmat.row_span(j).data(), f.data(), n);
    return improvement;
  };

  rng::Rng rng(options_.seed);
  std::vector<double> gap(n);
  for (std::size_t epoch = 0; epoch < options_.max_epochs; ++epoch) {
    double epoch_improvement = 0.0;
    const auto order = rng.permutation(n);
    for (std::size_t a = 0; a < n; ++a) {
      // Pair the shuffled index with the sample whose prediction error is
      // most violating relative to it (cheap working-set heuristic).  Gap
      // evaluation is split out of the argmax scan so it vectorises; the
      // serial scan keeps the exact first-strict-maximum tie-breaking of
      // the fused loop.
      const std::size_t i = order[a];
      const double err_i = y[i] - f[i];
      for (std::size_t k = 0; k < n; ++k) {
        gap[k] = std::abs(err_i - (y[k] - f[k]));
      }
      std::size_t j = i == 0 ? 1 : 0;
      double best_gap = -1.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i) continue;
        if (gap[k] > best_gap) {
          best_gap = gap[k];
          j = k;
        }
      }
      epoch_improvement += pair_update(i, j);
      // A random second pair keeps the sweep from stalling in cycles.
      const std::size_t rj = rng.uniform_index(n);
      if (rj != i) epoch_improvement += pair_update(i, rj);
    }
    if (epoch_improvement < options_.tol) break;
  }

  // Bias from the free support vectors' KKT conditions:
  // y_i - f_i - b = +eps for 0 < beta_i < C, -eps for -C < beta_i < 0.
  double b_acc = 0.0;
  std::size_t b_cnt = 0;
  const double margin = 1e-8 * c_box;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(beta_[i]) > margin && std::abs(beta_[i]) < c_box - margin) {
      const double sign = beta_[i] > 0.0 ? 1.0 : -1.0;
      b_acc += y[i] - f[i] - sign * eps;
      ++b_cnt;
    }
  }
  if (b_cnt > 0) {
    bias_ = b_acc / static_cast<double>(b_cnt);
  } else {
    // Fall back to the mean residual.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += y[i] - f[i];
    bias_ = acc / static_cast<double>(n);
  }
  trained_ = true;
}

double Svr::predict(std::span<const double> features) const {
  if (!trained_) throw std::logic_error("Svr::predict before fit");
  if (features.size() != feat_mean_.size()) {
    throw std::invalid_argument("Svr::predict: feature length mismatch");
  }
  const std::vector<double> z = standardize(features);
  double acc = bias_;
  for (std::size_t i = 0; i < beta_.size(); ++i) {
    if (beta_[i] == 0.0) continue;
    acc += beta_[i] * kernel(train_x_.row_span(i), z);
  }
  return acc;
}

std::size_t Svr::support_vector_count() const {
  std::size_t cnt = 0;
  for (double b : beta_) {
    if (std::abs(b) > 1e-9) ++cnt;
  }
  return cnt;
}

}  // namespace iup::baselines
