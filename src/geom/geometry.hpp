// 2-D geometry primitives for the monitoring area.
//
// The deployment is planar (Fig. 3 of the paper): M parallel links span the
// area, grid cells tile it, and all radio computations reduce to distances
// between a grid-cell centre and a transmitter/receiver segment.
#pragma once

#include <cstddef>

namespace iup::geom {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Point2 operator*(double s, Point2 p) { return {s * p.x, s * p.y}; }
  bool operator==(const Point2&) const = default;
};

double dot(Point2 a, Point2 b);
double norm(Point2 p);
double distance(Point2 a, Point2 b);

/// A wireless link: a straight segment from transmitter to receiver.
struct Segment {
  Point2 a;  ///< transmitter position
  Point2 b;  ///< receiver position

  double length() const { return distance(a, b); }

  /// Point at parameter t in [0, 1] along the segment.
  Point2 at(double t) const { return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)}; }
};

/// Parameter t in [0, 1] of the orthogonal projection of p onto the segment
/// (clamped to the end points).
double projection_parameter(const Segment& s, Point2 p);

/// Shortest distance from p to any point of the segment.
double point_segment_distance(const Segment& s, Point2 p);

/// Perpendicular distance from p to the *infinite line* through the segment
/// (sign discarded).  This is the Fresnel-clearance distance when the
/// projection falls inside the segment.
double point_line_distance(const Segment& s, Point2 p);

}  // namespace iup::geom
