#include "geom/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace iup::geom {

double dot(Point2 a, Point2 b) { return a.x * b.x + a.y * b.y; }

double norm(Point2 p) { return std::sqrt(dot(p, p)); }

double distance(Point2 a, Point2 b) { return norm(a - b); }

double projection_parameter(const Segment& s, Point2 p) {
  const Point2 d = s.b - s.a;
  const double len2 = dot(d, d);
  if (len2 == 0.0) return 0.0;  // degenerate segment
  const double t = dot(p - s.a, d) / len2;
  return std::clamp(t, 0.0, 1.0);
}

double point_segment_distance(const Segment& s, Point2 p) {
  return distance(p, s.at(projection_parameter(s, p)));
}

double point_line_distance(const Segment& s, Point2 p) {
  const Point2 d = s.b - s.a;
  const double len = norm(d);
  if (len == 0.0) return distance(p, s.a);
  const double cross = d.x * (p.y - s.a.y) - d.y * (p.x - s.a.x);
  return std::abs(cross) / len;
}

}  // namespace iup::geom
