#include "geom/fresnel.hpp"

#include <algorithm>
#include <cmath>

namespace iup::geom {

double fresnel_radius(double lambda, double d1, double d2) {
  const double d = d1 + d2;
  if (d <= 0.0) return 0.0;
  return std::sqrt(std::max(0.0, lambda * d1 * d2 / d));
}

double fresnel_v(double h, double lambda, double d1, double d2) {
  if (d1 <= 0.0 || d2 <= 0.0) {
    // Target collocated with a transceiver: treat as deeply obstructed.
    return h > 0.0 ? 10.0 : -10.0;
  }
  return h * std::sqrt(2.0 * (d1 + d2) / (lambda * d1 * d2));
}

double knife_edge_loss_db(double v) {
  // ITU-R P.526 approximation of the single-knife-edge diffraction loss:
  //   J(v) = 6.9 + 20 log10( sqrt((v - 0.1)^2 + 1) + v - 0.1 ),  v > -0.78
  // and 0 otherwise.  Smooth, strictly monotone, J(-0.78) ~ 0 and
  // J(0) ~ 6 dB (grazing incidence), unlike Lee's piecewise fit which has
  // ~1 dB seams at the segment boundaries.
  if (v <= -0.78) return 0.0;
  const double u = v - 0.1;
  return 6.9 + 20.0 * std::log10(std::sqrt(u * u + 1.0) + u);
}

FresnelClearance fresnel_clearance(const Segment& link, Point2 target,
                                   double lambda) {
  FresnelClearance out;
  const double t = projection_parameter(link, target);
  out.inside_segment = t > 0.0 && t < 1.0;
  const Point2 proj = link.at(t);
  out.d1 = distance(link.a, proj);
  out.d2 = distance(proj, link.b);
  out.clearance = distance(target, proj);
  out.zone_radius = fresnel_radius(lambda, out.d1, out.d2);
  return out;
}

}  // namespace iup::geom
