// First-Fresnel-zone (FFZ) geometry and knife-edge diffraction.
//
// The paper's target-effect taxonomy (Fig. 3/4) has three regimes keyed to
// the FFZ of each link: a large RSS decrease when the target blocks the
// direct path, a small decrease when the target is inside the FFZ but off
// the path, and essentially no change outside.  We model the attenuation
// with the classic single-knife-edge diffraction approximation, driven by
// the Fresnel-Kirchhoff parameter
//     v = h * sqrt(2 (d1 + d2) / (lambda d1 d2)),
// where h is the (signed) clearance of the obstruction relative to the
// line of sight and d1/d2 the distances to the two end points.
#pragma once

#include "geom/geometry.hpp"

namespace iup::geom {

/// Radius of the first Fresnel zone at distances d1, d2 from the end points:
/// r1 = sqrt(lambda d1 d2 / (d1 + d2)).  Largest at the midpoint — which is
/// why a body at the midpoint blocks a *smaller fraction* of the zone and
/// the paper's G matrix flips sign there (Eqs. 15/16).
double fresnel_radius(double lambda, double d1, double d2);

/// Fresnel-Kirchhoff diffraction parameter for clearance h (h > 0 means the
/// obstruction protrudes above the line of sight).
double fresnel_v(double h, double lambda, double d1, double d2);

/// Knife-edge diffraction loss in dB (>= 0) using the smooth ITU-R P.526
/// approximation of the Fresnel integral.  v <= -0.78 gives 0 dB (clear
/// path), v = 0 gives ~6 dB (grazing), larger v gives deeper shadowing.
double knife_edge_loss_db(double v);

/// Geometry of a target (modelled as a vertical cylinder of radius
/// `target_radius`) relative to one link.
struct FresnelClearance {
  double clearance = 0.0;       ///< distance from target centre to LoS line [m]
  double d1 = 0.0;              ///< distance TX -> projection point [m]
  double d2 = 0.0;              ///< distance projection point -> RX [m]
  double zone_radius = 0.0;     ///< first-Fresnel-zone radius at that point [m]
  bool inside_segment = false;  ///< projection falls between TX and RX
};

/// Compute the clearance geometry of `target` w.r.t. the link `link`.
FresnelClearance fresnel_clearance(const Segment& link, Point2 target,
                                   double lambda);

}  // namespace iup::geom
