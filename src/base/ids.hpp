// Typed identifiers shared across every layer (API v2 vocabulary).
//
// The public surfaces used to pass raw std::size_t for link and cell
// indices, which made `localize(site, cell)` vs `localize(site, link)`
// mix-ups compile clean.  These wrappers are implicit-conversion-free:
// constructing one from an integer is explicit, extracting the raw index
// is a named call (`value()`), and the types never cross-convert.  They
// are deliberately a LEAF header (standard library only) so sim/ and
// linalg-adjacent layers can speak the same vocabulary as api/ without
// violating the layering in src/CMakeLists.txt.
//
// SourceId names the transmitter behind a link — WiFi AP, BLE beacon or
// LoRa node — mirroring firmware-style `RssiSample{id, rssi}` records:
// every sample carries the identity of the radio that produced it, and
// the fingerprint side (SourceInfo) records which technology each link's
// source speaks.  Single-technology deployments are the degenerate case:
// every link tagged kWifi, ids equal to link indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

namespace iup {

/// Radio technology of a fingerprint source (per ROADMAP item 2 /
/// arXiv:1508.00040's comparison axes).
enum class Technology : std::uint8_t {
  kWifi = 0,
  kBle = 1,
  kLora = 2,
};

constexpr std::string_view to_string(Technology technology) {
  switch (technology) {
    case Technology::kWifi: return "wifi";
    case Technology::kBle: return "ble";
    case Technology::kLora: return "lora";
  }
  return "unknown";
}

/// Inverse of to_string(Technology); returns false on unknown names.
constexpr bool technology_from_string(std::string_view name,
                                      Technology& out) {
  if (name == "wifi") { out = Technology::kWifi; return true; }
  if (name == "ble") { out = Technology::kBle; return true; }
  if (name == "lora") { out = Technology::kLora; return true; }
  return false;
}

namespace detail {

/// CRTP strong index: explicit construction, named extraction, ordered
/// comparisons within the same tag only.  Tag types never cross-convert.
template <typename Tag>
class StrongIndex {
 public:
  constexpr StrongIndex() = default;
  constexpr explicit StrongIndex(std::size_t value) : value_(value) {}

  constexpr std::size_t value() const { return value_; }

  friend constexpr bool operator==(StrongIndex a, StrongIndex b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongIndex a, StrongIndex b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongIndex a, StrongIndex b) {
    return a.value_ < b.value_;
  }

 private:
  std::size_t value_ = 0;
};

}  // namespace detail

/// Row index into the fingerprint matrix: one RF link (TX/RX pair in the
/// device-free model, one anchor in the device-based model).
class LinkId : public detail::StrongIndex<LinkId> {
  using StrongIndex::StrongIndex;
};

/// Column index into the fingerprint matrix: one grid cell.
class CellId : public detail::StrongIndex<CellId> {
  using StrongIndex::StrongIndex;
};

/// Stable identity of the transmitter behind a link.  Unlike LinkId this
/// is NOT a matrix index: ids come from the deployment (an AP's chipset
/// id, a beacon's broadcast id) and survive re-indexing.  The default
/// constructed value is the explicit "unspecified" sentinel used by
/// legacy single-technology paths that predate the source model.
class SourceId {
 public:
  static constexpr std::uint64_t kUnspecified = ~std::uint64_t{0};

  constexpr SourceId() = default;
  constexpr explicit SourceId(std::uint64_t value) : value_(value) {}

  constexpr std::uint64_t value() const { return value_; }
  constexpr bool specified() const { return value_ != kUnspecified; }

  friend constexpr bool operator==(SourceId a, SourceId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(SourceId a, SourceId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(SourceId a, SourceId b) {
    return a.value_ < b.value_;
  }

 private:
  std::uint64_t value_ = kUnspecified;
};

/// Per-link source record: which transmitter feeds the link and what
/// radio technology it speaks.  A site's source table has exactly one
/// entry per fingerprint row (index == link index).
struct SourceInfo {
  SourceId id;
  Technology technology = Technology::kWifi;

  friend constexpr bool operator==(const SourceInfo& a,
                                   const SourceInfo& b) {
    return a.id == b.id && a.technology == b.technology;
  }
  friend constexpr bool operator!=(const SourceInfo& a,
                                   const SourceInfo& b) {
    return !(a == b);
  }
};

/// The degenerate single-technology table: link i fed by WiFi source i.
/// This is what legacy (source-less) registrations are equivalent to.
inline std::vector<SourceInfo> single_technology_sources(
    std::size_t links, Technology technology = Technology::kWifi) {
  std::vector<SourceInfo> sources(links);
  for (std::size_t i = 0; i < links; ++i) {
    sources[i] = SourceInfo{SourceId(i), technology};
  }
  return sources;
}

/// Boundary helpers between typed API v2 vocabulary and the raw indices
/// the numeric core speaks.
inline std::vector<CellId> to_cell_ids(const std::vector<std::size_t>& raw) {
  std::vector<CellId> cells;
  cells.reserve(raw.size());
  for (std::size_t c : raw) cells.emplace_back(c);
  return cells;
}

inline std::vector<std::size_t> to_raw_cells(
    const std::vector<CellId>& cells) {
  std::vector<std::size_t> raw;
  raw.reserve(cells.size());
  for (CellId c : cells) raw.push_back(c.value());
  return raw;
}

}  // namespace iup

template <>
struct std::hash<iup::LinkId> {
  std::size_t operator()(iup::LinkId id) const noexcept {
    return std::hash<std::size_t>{}(id.value());
  }
};

template <>
struct std::hash<iup::CellId> {
  std::size_t operator()(iup::CellId id) const noexcept {
    return std::hash<std::size_t>{}(id.value());
  }
};

template <>
struct std::hash<iup::SourceId> {
  std::size_t operator()(iup::SourceId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
