// Empirical CDFs and percentile summaries.
//
// The paper reports almost everything as CDF curves (Figs. 8, 9, 14, 18,
// 21, 23) or median/mean markers derived from them; this module owns the
// order statistics so every bench reports the same way.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iup::eval {

class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// Value at quantile p in [0, 1] (linear interpolation).
  double percentile(double p) const;

  double median() const { return percentile(0.5); }
  double mean() const;
  double min() const;
  double max() const;

  /// F(x): fraction of samples <= x.
  double fraction_at_or_below(double x) const;

  /// The sorted samples (for plotting / serialisation).
  const std::vector<double>& sorted() const { return sorted_; }

  /// Render "value @ CDF" rows at evenly spaced quantiles, one per line —
  /// the textual equivalent of the paper's CDF plots.
  std::string render(std::size_t points = 11,
                     const std::string& unit = "") const;

 private:
  std::vector<double> sorted_;
};

}  // namespace iup::eval
