#include "eval/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace iup::eval {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label,
                    const std::vector<double>& values, int precision) {
  if (values.size() + 1 != headers_.size()) {
    throw std::invalid_argument("Table::add_row: value count mismatch");
  }
  std::vector<std::string> cells;
  cells.reserve(headers_.size());
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string banner(const std::string& title) {
  return "\n=== " + title + " ===\n";
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace iup::eval
