#include "eval/labor.hpp"

#include <cmath>

namespace iup::eval {

std::vector<LaborSweepPoint> labor_cost_sweep(
    std::size_t base_cells, std::size_t base_links,
    const std::vector<double>& scales, std::size_t traditional_samples,
    std::size_t iupdater_samples, const baselines::LaborParams& params) {
  std::vector<LaborSweepPoint> out;
  out.reserve(scales.size());
  for (double k : scales) {
    LaborSweepPoint p;
    p.scale = k;
    p.cells = static_cast<std::size_t>(
        std::llround(static_cast<double>(base_cells) * k * k));
    p.references = static_cast<std::size_t>(
        std::llround(static_cast<double>(base_links) * k));
    p.traditional_hours =
        baselines::traditional_update_time_s(p.cells, traditional_samples,
                                             params) /
        3600.0;
    p.iupdater_hours =
        baselines::iupdater_update_time_s(p.references, iupdater_samples,
                                          params) /
        3600.0;
    p.saving_fraction =
        p.traditional_hours > 0.0
            ? 1.0 - p.iupdater_hours / p.traditional_hours
            : 0.0;
    out.push_back(p);
  }
  return out;
}

}  // namespace iup::eval
