// Error metrics (Section VI-A, "Implementation"): the paper measures
// reconstruction quality as the difference between the reconstructed and
// the ground-truth fingerprint matrix [dB], and localization quality as
// the Euclidean distance between the true and estimated locations [m].
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "sim/deployment.hpp"

namespace iup::eval {

/// Per-entry absolute reconstruction errors |x_hat - x_truth| [dB] over the
/// entries selected by `mask_value` in `b_mask`:
///   mask_value = 0 -> errors over the *reconstructed* (affected) entries,
///                     the paper's meaningful metric;
///   mask_value = 1 -> errors over the directly measured entries (sanity).
std::vector<double> reconstruction_errors_db(const linalg::Matrix& x_hat,
                                             const linalg::Matrix& x_truth,
                                             const linalg::Matrix& b_mask,
                                             double mask_value = 0.0);

/// Per-entry absolute errors over the whole matrix.
std::vector<double> reconstruction_errors_all_db(const linalg::Matrix& x_hat,
                                                 const linalg::Matrix& x_truth);

/// Localization error [m]: distance between the centres of the true and
/// the estimated grid cell.
double localization_error_m(const sim::Deployment& deployment,
                            std::size_t true_cell, std::size_t estimated_cell);

/// Mean of a sample vector (0 for empty input).
double mean_of(const std::vector<double>& values);

/// Median of a sample vector (0 for empty input).
double median_of(std::vector<double> values);

}  // namespace iup::eval
