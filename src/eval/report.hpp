// Plain-text table rendering for the benchmark harness.
//
// Every bench binary prints the series a paper figure plots; these helpers
// keep the output aligned and uniform so EXPERIMENTS.md can quote it
// verbatim.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace iup::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row of already-formatted cells (must match the header count).
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "=== title ===" banner used at the top of each bench section.
std::string banner(const std::string& title);

/// Format a double with fixed precision.
std::string fmt(double value, int precision = 2);

/// Format a percentage (0.921 -> "92.1%").
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace iup::eval
