// Shared experiment scaffolding for the benchmark harness.
//
// The paper's evaluation repeats one pattern: build the ground-truth
// matrices of a room at the six time stamps, run the iUpdater pipeline
// against fresh survey data at each update stamp, and score reconstruction
// and/or localization.  This module owns that loop so every bench binary is
// a thin driver around the same code paths the examples and tests use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "core/updater.hpp"
#include "eval/metrics.hpp"
#include "sim/fingerprint_builder.hpp"
#include "sim/sampler.hpp"
#include "sim/testbeds.hpp"

namespace iup::eval {

/// One room, fully prepared: testbed + ground truth at the paper's six
/// stamps + the no-decrease mask.
struct EnvironmentRun {
  sim::Testbed testbed;
  sim::GroundTruthSet ground_truth;
  linalg::Matrix b_mask;

  explicit EnvironmentRun(sim::Testbed tb);
};

/// Fresh measurement inputs for one update at `day`: X_B from baseline
/// surveys and X_R from visiting `reference_cells`, both with
/// `samples_per_location` averaging (paper: 5).
core::UpdateInputs collect_update_inputs(
    const EnvironmentRun& run, const std::vector<std::size_t>& reference_cells,
    std::size_t day, std::size_t samples_per_location = 5,
    const std::string& stream_tag = "update");

/// API v2 flavour: typed CellIds straight from Engine::reference_cells().
core::UpdateInputs collect_update_inputs(
    const EnvironmentRun& run, const std::vector<CellId>& reference_cells,
    std::size_t day, std::size_t samples_per_location = 5,
    const std::string& stream_tag = "update");

/// Engine flavour of collect_update_inputs: the same fresh measurements
/// wrapped as a batched-API request for `site` at `day`.
api::UpdateRequest collect_update_request(
    const EnvironmentRun& run, const std::string& site,
    const std::vector<std::size_t>& reference_cells, std::size_t day,
    std::size_t samples_per_location = 5,
    const std::string& stream_tag = "update");

/// API v2 flavour of collect_update_request (typed CellIds).
api::UpdateRequest collect_update_request(
    const EnvironmentRun& run, const std::string& site,
    const std::vector<CellId>& reference_cells, std::size_t day,
    std::size_t samples_per_location = 5,
    const std::string& stream_tag = "update");

/// Register `run` on an engine as `site` (day-0 survey + no-decrease mask)
/// and attach its deployment geometry so every LocalizerKind works.  `run`
/// must outlive the engine's use of the site.
api::Result<api::SnapshotPtr> register_run(api::Engine& engine,
                                           const EnvironmentRun& run,
                                           const std::string& site);

/// Result of scoring one reconstruction against the ground truth.
struct ReconstructionScore {
  std::size_t day = 0;
  std::vector<double> abs_errors_db;  ///< over reconstructed entries
  double median_db = 0.0;
  double mean_db = 0.0;
};

ReconstructionScore score_reconstruction(const EnvironmentRun& run,
                                         const linalg::Matrix& x_hat,
                                         std::size_t day);

/// Which localizer to evaluate (shared with the service facade).
using LocalizerKind = api::LocalizerKind;

/// Localization errors [m] over every grid cell at `day`, using `database`
/// as the fingerprint matrix.  `trials` online measurements are drawn per
/// cell with `samples` readings each.
std::vector<double> localization_errors(
    const EnvironmentRun& run, const linalg::Matrix& database,
    LocalizerKind kind, std::size_t day, std::size_t samples = 3,
    std::size_t trials = 1, const std::string& stream_tag = "online");

/// Human-readable stamp label ("3 days", "3 months", ...).
std::string stamp_label(std::size_t day);

}  // namespace iup::eval
