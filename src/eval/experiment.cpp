#include "eval/experiment.hpp"

#include <stdexcept>

namespace iup::eval {

EnvironmentRun::EnvironmentRun(sim::Testbed tb)
    : testbed(std::move(tb)),
      ground_truth(sim::collect_ground_truth(testbed, sim::paper_time_stamps())),
      b_mask(sim::no_decrease_mask(testbed)) {}

core::UpdateInputs collect_update_inputs(
    const EnvironmentRun& run, const std::vector<std::size_t>& reference_cells,
    std::size_t day, std::size_t samples_per_location,
    const std::string& stream_tag) {
  // The stream tag keys the sampler's RNG so repeated collections at the
  // same day see independent noise (as repeated real surveys would).
  sim::Sampler sampler(run.testbed,
                       stream_tag + "-day" + std::to_string(day));
  core::UpdateInputs inputs;
  const auto& original = run.ground_truth.at_day(0);
  const auto& original_baselines = run.ground_truth.baselines_at_day(0);
  inputs.x_b = sim::measure_no_decrease_matrix(
      sampler, run.b_mask, day, samples_per_location, &original,
      &original_baselines);
  inputs.x_r = sim::measure_reference_matrix(sampler, reference_cells, day,
                                             samples_per_location);
  return inputs;
}

core::UpdateInputs collect_update_inputs(
    const EnvironmentRun& run, const std::vector<CellId>& reference_cells,
    std::size_t day, std::size_t samples_per_location,
    const std::string& stream_tag) {
  return collect_update_inputs(run, to_raw_cells(reference_cells), day,
                               samples_per_location, stream_tag);
}

ReconstructionScore score_reconstruction(const EnvironmentRun& run,
                                         const linalg::Matrix& x_hat,
                                         std::size_t day) {
  ReconstructionScore score;
  score.day = day;
  score.abs_errors_db = reconstruction_errors_db(
      x_hat, run.ground_truth.at_day(day), run.b_mask, /*mask_value=*/0.0);
  score.median_db = median_of(score.abs_errors_db);
  score.mean_db = mean_of(score.abs_errors_db);
  return score;
}

api::UpdateRequest collect_update_request(
    const EnvironmentRun& run, const std::string& site,
    const std::vector<std::size_t>& reference_cells, std::size_t day,
    std::size_t samples_per_location, const std::string& stream_tag) {
  api::UpdateRequest request;
  request.site = site;
  request.inputs = collect_update_inputs(run, reference_cells, day,
                                         samples_per_location, stream_tag);
  request.day = day;
  return request;
}

api::UpdateRequest collect_update_request(
    const EnvironmentRun& run, const std::string& site,
    const std::vector<CellId>& reference_cells, std::size_t day,
    std::size_t samples_per_location, const std::string& stream_tag) {
  return collect_update_request(run, site, to_raw_cells(reference_cells), day,
                                samples_per_location, stream_tag);
}

api::Result<api::SnapshotPtr> register_run(api::Engine& engine,
                                           const EnvironmentRun& run,
                                           const std::string& site) {
  api::Result<api::SnapshotPtr> registered =
      engine.register_site(site, run.ground_truth.at_day(0), run.b_mask);
  if (!registered.ok()) return registered;
  if (const api::Status attached = engine.attach_deployment(
          site, &run.testbed.deployment());
      !attached.ok()) {
    return attached;
  }
  return registered;
}

std::vector<double> localization_errors(const EnvironmentRun& run,
                                        const linalg::Matrix& database,
                                        LocalizerKind kind, std::size_t day,
                                        std::size_t samples,
                                        std::size_t trials,
                                        const std::string& stream_tag) {
  const sim::Deployment& dep = run.testbed.deployment();
  const std::unique_ptr<loc::Localizer> localizer =
      api::make_localizer(kind, database, &dep);
  if (localizer == nullptr) {
    throw std::invalid_argument("localization_errors: unsupported localizer");
  }

  sim::Sampler sampler(run.testbed,
                       stream_tag + "-day" + std::to_string(day));
  std::vector<std::vector<double>> queries;
  std::vector<std::size_t> true_cells;
  queries.reserve(dep.num_cells() * trials);
  true_cells.reserve(dep.num_cells() * trials);
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t j = 0; j < dep.num_cells(); ++j) {
      queries.push_back(sampler.online_measurement(j, day, samples));
      true_cells.push_back(j);
    }
  }

  const auto estimates = localizer->localize_batch(queries);
  std::vector<double> errors;
  errors.reserve(estimates.size());
  for (std::size_t k = 0; k < estimates.size(); ++k) {
    errors.push_back(localization_error_m(dep, true_cells[k],
                                          estimates[k].cell));
  }
  return errors;
}

std::string stamp_label(std::size_t day) {
  switch (day) {
    case 0:
      return "original";
    case 90:
      return "3 months";
    default:
      return std::to_string(day) + " days";
  }
}

}  // namespace iup::eval
