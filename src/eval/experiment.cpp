#include "eval/experiment.hpp"

#include <stdexcept>

#include "baselines/rass.hpp"
#include "loc/knn.hpp"
#include "loc/omp.hpp"

namespace iup::eval {

EnvironmentRun::EnvironmentRun(sim::Testbed tb)
    : testbed(std::move(tb)),
      ground_truth(sim::collect_ground_truth(testbed, sim::paper_time_stamps())),
      b_mask(sim::no_decrease_mask(testbed)) {}

core::UpdateInputs collect_update_inputs(
    const EnvironmentRun& run, const std::vector<std::size_t>& reference_cells,
    std::size_t day, std::size_t samples_per_location,
    const std::string& stream_tag) {
  // The stream tag keys the sampler's RNG so repeated collections at the
  // same day see independent noise (as repeated real surveys would).
  sim::Sampler sampler(run.testbed,
                       stream_tag + "-day" + std::to_string(day));
  core::UpdateInputs inputs;
  const auto& original = run.ground_truth.at_day(0);
  const auto& original_baselines = run.ground_truth.baselines_at_day(0);
  inputs.x_b = sim::measure_no_decrease_matrix(
      sampler, run.b_mask, day, samples_per_location, &original,
      &original_baselines);
  inputs.x_r = sim::measure_reference_matrix(sampler, reference_cells, day,
                                             samples_per_location);
  return inputs;
}

ReconstructionScore score_reconstruction(const EnvironmentRun& run,
                                         const linalg::Matrix& x_hat,
                                         std::size_t day) {
  ReconstructionScore score;
  score.day = day;
  score.abs_errors_db = reconstruction_errors_db(
      x_hat, run.ground_truth.at_day(day), run.b_mask, /*mask_value=*/0.0);
  score.median_db = median_of(score.abs_errors_db);
  score.mean_db = mean_of(score.abs_errors_db);
  return score;
}

std::vector<double> localization_errors(const EnvironmentRun& run,
                                        const linalg::Matrix& database,
                                        LocalizerKind kind, std::size_t day,
                                        std::size_t samples,
                                        std::size_t trials,
                                        const std::string& stream_tag) {
  const sim::Deployment& dep = run.testbed.deployment();

  std::unique_ptr<loc::Localizer> localizer;
  loc::KnnLocalizer* knn = nullptr;
  switch (kind) {
    case LocalizerKind::kOmp:
      localizer = std::make_unique<loc::OmpLocalizer>(
          database, std::vector<double>{});
      break;
    case LocalizerKind::kKnn: {
      auto k = std::make_unique<loc::KnnLocalizer>(database);
      knn = k.get();
      localizer = std::move(k);
      break;
    }
    case LocalizerKind::kRass:
      localizer = std::make_unique<baselines::Rass>(database, dep);
      break;
  }
  if (knn != nullptr) knn->set_deployment(&dep);

  sim::Sampler sampler(run.testbed,
                       stream_tag + "-day" + std::to_string(day));
  std::vector<double> errors;
  errors.reserve(dep.num_cells() * trials);
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t j = 0; j < dep.num_cells(); ++j) {
      const auto y = sampler.online_measurement(j, day, samples);
      const auto est = localizer->localize(y);
      errors.push_back(localization_error_m(dep, j, est.cell));
    }
  }
  return errors;
}

std::string stamp_label(std::size_t day) {
  switch (day) {
    case 0:
      return "original";
    case 90:
      return "3 months";
    default:
      return std::to_string(day) + " days";
  }
}

}  // namespace iup::eval
