#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "loc/localizer.hpp"

namespace iup::eval {

std::vector<double> reconstruction_errors_db(const linalg::Matrix& x_hat,
                                             const linalg::Matrix& x_truth,
                                             const linalg::Matrix& b_mask,
                                             double mask_value) {
  if (x_hat.rows() != x_truth.rows() || x_hat.cols() != x_truth.cols() ||
      x_hat.rows() != b_mask.rows() || x_hat.cols() != b_mask.cols()) {
    throw std::invalid_argument("reconstruction_errors_db: shape mismatch");
  }
  std::vector<double> out;
  out.reserve(x_hat.size());
  for (std::size_t i = 0; i < x_hat.rows(); ++i) {
    for (std::size_t j = 0; j < x_hat.cols(); ++j) {
      if (b_mask(i, j) == mask_value) {
        out.push_back(std::abs(x_hat(i, j) - x_truth(i, j)));
      }
    }
  }
  return out;
}

std::vector<double> reconstruction_errors_all_db(
    const linalg::Matrix& x_hat, const linalg::Matrix& x_truth) {
  if (x_hat.rows() != x_truth.rows() || x_hat.cols() != x_truth.cols()) {
    throw std::invalid_argument(
        "reconstruction_errors_all_db: shape mismatch");
  }
  std::vector<double> out;
  out.reserve(x_hat.size());
  for (std::size_t k = 0; k < x_hat.data().size(); ++k) {
    out.push_back(std::abs(x_hat.data()[k] - x_truth.data()[k]));
  }
  return out;
}

double localization_error_m(const sim::Deployment& deployment,
                            std::size_t true_cell,
                            std::size_t estimated_cell) {
  return loc::cell_distance_m(deployment, true_cell, estimated_cell);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v;
  return acc / static_cast<double>(values.size());
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const auto lower = std::max_element(values.begin(), values.begin() + mid);
    m = (m + *lower) / 2.0;
  }
  return m;
}

}  // namespace iup::eval
