// Fig. 20 sweep: update time cost vs. monitored-area scale.
//
// When the edge length of the area grows by a factor k, the number of grid
// cells grows as k^2 while the number of links — and therefore the matrix
// rank and reference-location count — grows only as k.  That asymmetry is
// why the paper pitches iUpdater for airports and malls.
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/traditional.hpp"

namespace iup::eval {

struct LaborSweepPoint {
  double scale = 1.0;             ///< multiple of the base edge length
  std::size_t cells = 0;          ///< N(k) = N0 * k^2
  std::size_t references = 0;     ///< n(k) = M0 * k
  double traditional_hours = 0.0; ///< whole-database re-survey, 50 samples
  double iupdater_hours = 0.0;    ///< reference survey, 5 samples
  double saving_fraction = 0.0;
};

/// Sweep area scales (paper: 1..10x the base edge) starting from the given
/// base deployment size.
std::vector<LaborSweepPoint> labor_cost_sweep(
    std::size_t base_cells, std::size_t base_links,
    const std::vector<double>& scales,
    std::size_t traditional_samples = 50, std::size_t iupdater_samples = 5,
    const baselines::LaborParams& params = {});

}  // namespace iup::eval
