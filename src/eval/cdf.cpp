#include "eval/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace iup::eval {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  if (sorted_.empty()) {
    throw std::invalid_argument("EmpiricalCdf: no samples");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::percentile(double p) const {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("EmpiricalCdf::percentile: p outside [0,1]");
  }
  if (sorted_.size() == 1) return sorted_.front();
  const double idx = p * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double EmpiricalCdf::mean() const {
  double acc = 0.0;
  for (double v : sorted_) acc += v;
  return acc / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::min() const { return sorted_.front(); }
double EmpiricalCdf::max() const { return sorted_.back(); }

double EmpiricalCdf::fraction_at_or_below(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(std::distance(sorted_.begin(), it)) /
         static_cast<double>(sorted_.size());
}

std::string EmpiricalCdf::render(std::size_t points,
                                 const std::string& unit) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  for (std::size_t k = 0; k < points; ++k) {
    const double p =
        points == 1 ? 1.0
                    : static_cast<double>(k) / static_cast<double>(points - 1);
    os << "  CDF " << p << " : " << percentile(p);
    if (!unit.empty()) os << ' ' << unit;
    os << '\n';
  }
  return os.str();
}

}  // namespace iup::eval
