// Site-survey planner: size the update labor for a candidate deployment
// before rolling it out.
//
// Given a floor size and link budget the planner reports the grid, the
// number of reference locations iUpdater will need (rank = link count),
// per-update labor for both strategies, and the break-even update
// frequency where iUpdater's savings pay for its one-time full initial
// survey.
#include <cstdio>

#include "baselines/traditional.hpp"
#include "eval/labor.hpp"
#include "eval/report.hpp"

int main() {
  using namespace iup;
  std::printf("iUpdater site-survey planner\n\n");

  struct Site {
    const char* name;
    std::size_t cells;
    std::size_t links;
  };
  // The paper's three rooms plus two large-scale candidates.
  const Site sites[] = {
      {"office 9x12 m", 94, 8},
      {"library 8x11 m", 72, 6},
      {"hall 10x10 m", 120, 8},
      {"supermarket 30x40 m", 94 * 9, 8 * 3},
      {"airport concourse 90x120 m", 94 * 100, 8 * 10},
  };

  eval::Table table({"site", "cells", "refs", "full survey", "iUpdater",
                     "saving"});
  for (const auto& site : sites) {
    const double t_full =
        baselines::traditional_update_time_s(site.cells, 50);
    const double t_iup = baselines::iupdater_update_time_s(site.links, 5);
    const auto fmt_time = [](double seconds) {
      if (seconds < 120.0) return eval::fmt(seconds, 0) + " s";
      if (seconds < 7200.0) return eval::fmt(seconds / 60.0, 1) + " min";
      return eval::fmt(seconds / 3600.0, 1) + " h";
    };
    table.add_row({site.name, std::to_string(site.cells),
                   std::to_string(site.links), fmt_time(t_full),
                   fmt_time(t_iup),
                   eval::fmt_percent(1.0 - t_iup / t_full)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("notes:\n");
  std::printf("  - reference count equals the fingerprint-matrix rank, "
              "which equals the link count (paper Sec. IV-B);\n");
  std::printf("  - the initial survey is always a full survey; every "
              "subsequent update only visits the reference locations;\n");
  std::printf("  - weekly updates of the airport concourse: %.1f h/year "
              "with iUpdater vs %.0f h/year with full re-surveys.\n",
              52.0 * baselines::iupdater_update_time_s(80, 5) / 3600.0,
              52.0 * baselines::traditional_update_time_s(9400, 50) / 3600.0);
  return 0;
}
