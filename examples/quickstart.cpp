// Quickstart: the full iUpdater workflow on the office testbed, driven
// entirely through the service facade (iup::api::Engine).
//
//  1. Initial site survey -> register the site: MIC reference locations +
//     correlation matrix Z, committed as snapshot version 1.
//  2. Days 5/15/45 later: survey only the reference locations and apply
//     one batched update; every timestamp commits a new snapshot version.
//  3. Localize online measurements with OMP against the latest snapshot.
#include <cstdio>

#include "api/engine.hpp"
#include "eval/experiment.hpp"
#include "eval/report.hpp"
#include "linalg/svd.hpp"

int main() {
  using namespace iup;

  std::printf("iUpdater quickstart (office testbed, 8 links x 96 cells)\n");

  // --- day 0: initial survey ------------------------------------------
  eval::EnvironmentRun run(sim::make_office_testbed());
  const linalg::Matrix& x0 = run.ground_truth.at_day(0);
  std::printf("fingerprint matrix: %zux%zu, numerical rank %zu\n",
              x0.rows(), x0.cols(), linalg::numerical_rank(x0, 1e-6));

  api::Engine engine;
  const auto registered = eval::register_run(engine, run, "office");
  if (!registered.ok()) {
    std::fprintf(stderr, "register_site failed: %s\n",
                 registered.status().to_string().c_str());
    return 1;
  }
  const auto cells = engine.reference_cells("office").value();
  std::printf("reference locations (%zu):", cells.size());
  for (CellId c : cells) std::printf(" %zu", c.value());
  std::printf("\n");

  // --- low-cost updates at three timestamps, as one batch -------------
  std::vector<api::UpdateRequest> batch;
  for (std::size_t day : {std::size_t{5}, std::size_t{15}, std::size_t{45}}) {
    batch.push_back(eval::collect_update_request(run, "office", cells, day));
  }
  const auto results = engine.update_batch(batch);
  for (std::size_t k = 0; k < results.size(); ++k) {
    if (!results[k].ok()) {
      std::fprintf(stderr, "update day %zu failed: %s\n", batch[k].day,
                   results[k].status().to_string().c_str());
      return 1;
    }
    const auto& res = results[k].value();
    const auto score = eval::score_reconstruction(run, res.x_hat(),
                                                  batch[k].day);
    std::printf("day %3zu -> snapshot v%llu: median %.2f dB, mean %.2f dB "
                "over %zu reconstructed entries\n",
                batch[k].day,
                static_cast<unsigned long long>(res.committed_version),
                score.median_db, score.mean_db, score.abs_errors_db.size());
  }

  // Compare against doing nothing (stale database).
  const auto stale = eval::score_reconstruction(run, x0, 45);
  std::printf("stale database at day 45: median %.2f dB, mean %.2f dB\n",
              stale.median_db, stale.mean_db);

  // --- localization through the engine --------------------------------
  const std::size_t day = 45;
  const auto& dep = run.testbed.deployment();
  // Same stream tag as eval::localization_errors builds internally, so the
  // three databases below are compared on identical measurement draws.
  sim::Sampler sampler(run.testbed, "online-day" + std::to_string(day));
  std::vector<std::vector<double>> queries;
  for (std::size_t j = 0; j < dep.num_cells(); ++j) {
    queries.push_back(sampler.online_measurement(j, day, 3));
  }
  const auto estimates = engine.localize_batch("office", queries);
  if (!estimates.ok()) {
    std::fprintf(stderr, "localize_batch failed: %s\n",
                 estimates.status().to_string().c_str());
    return 1;
  }
  std::vector<double> updated_err;
  for (std::size_t j = 0; j < queries.size(); ++j) {
    updated_err.push_back(
        eval::localization_error_m(dep, j, estimates.value()[j].cell));
  }
  const auto stale_err = eval::localization_errors(
      run, x0, eval::LocalizerKind::kOmp, day);
  const auto truth_err = eval::localization_errors(
      run, run.ground_truth.at_day(day), eval::LocalizerKind::kOmp, day);
  std::printf("localization median error: ground-truth DB %.2f m | "
              "iUpdater %.2f m | stale DB %.2f m\n",
              eval::median_of(truth_err), eval::median_of(updated_err),
              eval::median_of(stale_err));
  std::printf("snapshot history: %zu versions retained for 'office'\n",
              engine.store().version_count("office"));
  return 0;
}
