// Quickstart: the full iUpdater workflow on the office testbed.
//
//  1. Initial site survey -> fingerprint matrix X and no-decrease mask B.
//  2. Build the updater: MIC reference locations + correlation matrix Z.
//  3. 45 days later: survey only the reference locations, reconstruct the
//     whole database, and localize a target with OMP.
#include <cstdio>

#include "core/updater.hpp"
#include "eval/experiment.hpp"
#include "eval/report.hpp"
#include "linalg/svd.hpp"
#include "loc/omp.hpp"

int main() {
  using namespace iup;

  std::printf("iUpdater quickstart (office testbed, 8 links x 96 cells)\n");

  // --- day 0: initial survey ------------------------------------------
  eval::EnvironmentRun run(sim::make_office_testbed());
  const linalg::Matrix& x0 = run.ground_truth.at_day(0);
  std::printf("fingerprint matrix: %zux%zu, numerical rank %zu\n",
              x0.rows(), x0.cols(), linalg::numerical_rank(x0, 1e-6));

  core::IUpdater updater(x0, run.b_mask);
  std::printf("reference locations (%zu):", updater.reference_cells().size());
  for (std::size_t c : updater.reference_cells()) std::printf(" %zu", c);
  std::printf("\n");

  // --- day 45: low-cost update ----------------------------------------
  const std::size_t day = 45;
  const auto inputs =
      eval::collect_update_inputs(run, updater.reference_cells(), day);
  const auto report = updater.update(inputs);
  const auto score = eval::score_reconstruction(run, report.x_hat, day);
  std::printf("day %zu reconstruction: median %.2f dB, mean %.2f dB over "
              "%zu reconstructed entries\n",
              day, score.median_db, score.mean_db,
              score.abs_errors_db.size());

  // Compare against doing nothing (stale database).
  const auto stale = eval::score_reconstruction(run, x0, day);
  std::printf("stale database     : median %.2f dB, mean %.2f dB\n",
              stale.median_db, stale.mean_db);

  // --- localization -----------------------------------------------------
  const auto updated_err = eval::localization_errors(
      run, report.x_hat, eval::LocalizerKind::kOmp, day);
  const auto stale_err = eval::localization_errors(
      run, x0, eval::LocalizerKind::kOmp, day);
  const auto truth_err = eval::localization_errors(
      run, run.ground_truth.at_day(day), eval::LocalizerKind::kOmp, day);
  std::printf("localization median error: ground-truth DB %.2f m | "
              "iUpdater %.2f m | stale DB %.2f m\n",
              eval::median_of(truth_err), eval::median_of(updated_err),
              eval::median_of(stale_err));
  return 0;
}
