// Trace capture: record a mixed-radio campaign (WiFi + BLE + LoRa, one
// BLE beacon dead after the initial survey) as the three CSV files the
// replay driver consumes.  This is the generator for the checked-in
// miniature dataset under data/traces/mini/ — rerunning it reproduces
// those files byte for byte (everything is deterministic in the testbed
// seed and sampler stream tags).
//
//   trace_capture <output-dir> [links] [slots-per-link]
//
// Writes <output-dir>/{fingerprint,observations,queries}.csv.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/testbeds.hpp"
#include "trace/capture.hpp"
#include "trace/fingerprint_csv.hpp"
#include "trace/observation_csv.hpp"

int main(int argc, char** argv) {
  using namespace iup;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <output-dir> [links] [slots-per-link]\n",
                 argv[0]);
    return 2;
  }
  const std::string dir = argv[1];

  sim::MixedRadioOptions options;
  if (argc > 2) options.num_links = std::strtoul(argv[2], nullptr, 10);
  if (argc > 3) options.slots_per_link = std::strtoul(argv[3], nullptr, 10);
  // The acceptance scenario: the middle BLE beacon died after the survey.
  options.missing_sources = {SourceId(200 + options.num_links / 3)};
  const sim::Testbed testbed = sim::make_mixed_radio_testbed(options);

  const auto captured = trace::capture_trace(testbed);
  if (!captured.ok()) {
    std::fprintf(stderr, "capture_trace failed: %s\n",
                 captured.status().to_string().c_str());
    return 1;
  }
  const trace::CapturedTrace& trace = captured.value();

  const std::string fp = dir + "/fingerprint.csv";
  const std::string obs = dir + "/observations.csv";
  const std::string qry = dir + "/queries.csv";
  for (const auto& [status, path] :
       {std::pair{trace::write_fingerprint_csv(trace.fingerprint, fp), fp},
        std::pair{trace::write_observation_csv(trace.observations, obs), obs},
        std::pair{trace::write_query_csv(trace.queries, qry), qry}}) {
    if (!status.ok()) {
      std::fprintf(stderr, "writing %s failed: %s\n", path.c_str(),
                   status.to_string().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf(
      "captured %zux%zu fingerprint, %zu observations, %zu queries "
      "(missing source id %llu)\n",
      trace.fingerprint.database.rows(), trace.fingerprint.database.cols(),
      trace.observations.size(), trace.queries.size(),
      static_cast<unsigned long long>(options.missing_sources[0].value()));
  return 0;
}
