// Elderly monitoring: keep a device-free localization deployment accurate
// over three months with scheduled low-cost updates.
//
// The hall testbed stands in for an assisted-living common room.  A care
// operator re-surveys only the reference locations at each maintenance
// visit; the example reports how localization accuracy would have decayed
// without the updates and what each visit costs in labor.
#include <cstdio>

#include "api/engine.hpp"
#include "baselines/traditional.hpp"
#include "eval/experiment.hpp"

int main() {
  using namespace iup;
  std::printf("Elderly-monitoring maintenance schedule (hall testbed)\n\n");

  eval::EnvironmentRun run(sim::make_hall_testbed());
  const auto& x0 = run.ground_truth.at_day(0);
  api::Engine engine;
  eval::register_run(engine, run, "hall");
  const auto cells = engine.reference_cells("hall").value();

  const double visit_cost_s =
      baselines::iupdater_update_time_s(cells.size(), 5);
  const double full_cost_s =
      baselines::traditional_update_time_s(run.testbed.num_cells(), 50);

  std::printf("deployment: %zu links x %zu cells; maintenance visit "
              "surveys %zu reference locations (%.0f s vs %.0f min for a "
              "full re-survey)\n\n",
              run.testbed.num_links(), run.testbed.num_cells(),
              cells.size(), visit_cost_s, full_cost_s / 60.0);

  std::printf("%-10s %-26s %-26s\n", "day", "median error, maintained [m]",
              "median error, neglected [m]");
  for (std::size_t day : sim::paper_update_stamps()) {
    // Maintained: sequential updates at every stamp (the database carries
    // over between visits).
    const auto rep = engine.update(
        eval::collect_update_request(run, "hall", cells, day));
    const auto maintained = eval::localization_errors(
        run, rep.value().x_hat(), eval::LocalizerKind::kOmp, day, 3);
    const auto neglected = eval::localization_errors(
        run, x0, eval::LocalizerKind::kOmp, day, 3);
    std::printf("%-10zu %-26.2f %-26.2f\n", day,
                eval::median_of(maintained), eval::median_of(neglected));
  }

  std::printf("\ntotal maintenance labor over 3 months: %.0f s across 5 "
              "visits (a single full re-survey costs %.0f min)\n",
              5.0 * visit_cost_s, full_cost_s / 60.0);
  return 0;
}
