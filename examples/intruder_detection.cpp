// Intruder detection: track a person walking through the office at night,
// 45 days after the last full site survey.
//
// The paper's motivating scenario: the target carries no device, so the
// system must localize from link-RSS perturbations alone.  We compare
// tracking on the stale database against tracking on the iUpdater-updated
// database (one 55-second reference survey).
#include <cstdio>

#include "api/engine.hpp"
#include "eval/experiment.hpp"
#include "geom/geometry.hpp"
#include "loc/omp.hpp"
#include "sim/sampler.hpp"

int main() {
  using namespace iup;
  std::printf("Intruder tracking demo (office, 45 days after last survey)\n");

  eval::EnvironmentRun run(sim::make_office_testbed());
  const auto& x0 = run.ground_truth.at_day(0);
  const std::size_t day = 45;

  // Low-cost update: visit the 8 reference locations once.
  api::Engine engine;
  eval::register_run(engine, run, "office");
  const auto cells = engine.reference_cells("office").value();
  const auto report = engine.update(
      eval::collect_update_request(run, "office", cells, day));

  const loc::OmpLocalizer fresh(report.value().x_hat(), {});
  const loc::OmpLocalizer stale(x0, {});

  // The intruder walks along link 4's corridor, one grid cell per step.
  const auto& dep = run.testbed.deployment();
  sim::Sampler online(run.testbed, "intruder");
  std::printf("\n%-6s %-18s %-22s %-22s\n", "step", "true cell (x, y)",
              "updated DB estimate", "stale DB estimate");
  double err_fresh = 0.0, err_stale = 0.0;
  std::size_t steps = 0;
  for (std::size_t u = 0; u < dep.slots_per_link(); u += 2) {
    const std::size_t cell = dep.cell_index(4, u);
    const auto y = online.online_measurement(cell, day, 3);
    const auto e_fresh = fresh.localize(y);
    const auto e_stale = stale.localize(y);
    const geom::Point2 truth = dep.cell_center(cell);
    const double d_fresh = loc::cell_distance_m(dep, cell, e_fresh.cell);
    const double d_stale = loc::cell_distance_m(dep, cell, e_stale.cell);
    err_fresh += d_fresh;
    err_stale += d_stale;
    ++steps;
    std::printf("%-6zu (%4.1f, %4.1f) m      cell %3zu (err %.2f m)     "
                "cell %3zu (err %.2f m)\n",
                steps, truth.x, truth.y, e_fresh.cell, d_fresh, e_stale.cell,
                d_stale);
  }
  std::printf("\nmean tracking error: updated DB %.2f m | stale DB %.2f m\n",
              err_fresh / static_cast<double>(steps),
              err_stale / static_cast<double>(steps));
  std::printf("update labor: %zu reference locations, ~55 s of surveying\n",
              report.value().reference_count);
  return 0;
}
