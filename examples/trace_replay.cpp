// Trace replay: run the full ingest -> update -> localize -> CDF pipeline
// from recorded CSV files.  This is the binary CI runs end to end on the
// checked-in miniature dataset (data/traces/mini/): any Status error or a
// non-finite CDF point is a nonzero exit.
//
//   trace_replay <fingerprint.csv> <observations.csv> <queries.csv>
#include <cmath>
#include <cstdio>

#include "api/engine.hpp"
#include "trace/replay.hpp"

int main(int argc, char** argv) {
  using namespace iup;

  if (argc != 4) {
    std::fprintf(
        stderr,
        "usage: %s <fingerprint.csv> <observations.csv> <queries.csv>\n",
        argv[0]);
    return 2;
  }

  api::Engine engine;
  const auto report =
      trace::run_replay_files(engine, argv[1], argv[2], argv[3]);
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  const trace::ReplayReport& r = report.value();

  std::printf("replay: %zu observations accepted, %zu quarantined, "
              "%zu updates committed (%zu skipped), final snapshot v%llu\n",
              r.observations_accepted, r.observations_quarantined,
              r.updates_committed, r.updates_skipped,
              static_cast<unsigned long long>(r.final_version));

  if (r.localization_errors_m.empty()) {
    std::fprintf(stderr, "no localization queries were scored\n");
    return 1;
  }
  for (const double e : r.localization_errors_m) {
    if (!std::isfinite(e)) {
      std::fprintf(stderr, "non-finite localization error in the CDF\n");
      return 1;
    }
  }
  const auto cdf = r.error_cdf();
  std::printf("localization error over %zu queries: median %.3f m, "
              "mean %.3f m, p90 %.3f m\n",
              cdf.size(), cdf.median(), cdf.mean(), cdf.percentile(0.9));
  std::printf("%s", cdf.render(11, "m").c_str());

  const auto health = engine.site_health("replay");
  if (!health.ok()) {
    std::fprintf(stderr, "site_health failed: %s\n",
                 health.status().to_string().c_str());
    return 1;
  }
  std::printf("site health: %llu accepted, %llu quarantined, "
              "last observed day %llu\n",
              static_cast<unsigned long long>(
                  health.value().observations_accepted),
              static_cast<unsigned long long>(
                  health.value().quarantined_total()),
              static_cast<unsigned long long>(
                  health.value().last_observed_day));
  return 0;
}
